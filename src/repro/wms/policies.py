"""The queue-policy registry: named queueing disciplines for allocators.

PR 5's :class:`~repro.storage.provisioning.BBProvisioner` and the
:class:`~repro.compute.allocator.CoreAllocator` both hard-coded strict
FIFO over their request queues, so every contended scenario inherited
one queueing discipline.  This module gives the discipline a name —
mirroring the :mod:`repro.network.allocators` registry — so configs,
sweeps, and CLIs can carry it (``SimulatorConfig.queue_policy``,
``repro-simulate --queue-policy``).

Built-in policies:

``fifo``
    Strict FIFO, the default: grant the longest queue prefix that fits.
    Byte-identical to the historical hard-coded behaviour.
``easy-backfill``
    EASY backfilling (Lifka): the head's grant time is protected by a
    reservation (shadow time + extra units computed from the running
    grants' projected release times); a queued request may jump ahead
    iff it fits now and either finishes before the shadow time or only
    consumes the extra units.  Requests without walltime estimates can
    only backfill into the extra units.
``conservative-backfill``
    Every queued request keeps its projected strict-FIFO start time; a
    request may jump ahead iff granting it now delays *no* other queued
    request past that projection.  With exact estimates this never
    delays anyone relative to FIFO (property-tested).
``plan``
    Plan-based scheduling (Kopanski & Rzadca, arXiv:2109.00082): over a
    single pool this projects a full schedule like conservative
    backfill; its distinguishing behaviour — co-reserving cores *and*
    burst-buffer granules as one joint reservation, holding both or
    neither — lives in :class:`PlanCoordinator`, which the contended
    scenarios route requests through when this policy is selected.

A policy's :meth:`QueuePolicy.select` is a *pure* function of the queue
snapshot: it must not touch the environment or emit telemetry (lint
rule SIM071).  Wait reporting stays at the allocator decision sites,
which speak the closed :class:`~repro.obs.waits.WaitCause` vocabulary
(SIM070).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.des import Environment, Event
from repro.obs.waits import WaitCause

#: Walltime estimate meaning "unknown" (no projected release time).
UNKNOWN = float("inf")


@dataclass
class QueuedRequest:
    """One queued allocation request, as policies see it.

    ``amount`` is in the allocator's own units (cores or granules);
    ``estimate`` is the requester's walltime estimate in seconds
    (:data:`UNKNOWN` when it did not provide one).  ``tag`` names the
    requester in telemetry only.
    """

    amount: int
    event: Event
    tag: str = ""
    estimate: float = UNKNOWN


@dataclass(frozen=True)
class RunningGrant:
    """A granted, not-yet-released block, as policies see it.

    ``deadline`` is the projected release time (grant time + estimate);
    :data:`UNKNOWN` when the requester gave no estimate.
    """

    amount: int
    deadline: float = UNKNOWN


class QueuePolicy(abc.ABC):
    """A queueing discipline over an allocator's pending requests.

    Policies are stateless; all scheduling state arrives through the
    arguments.  ``select`` must be pure — same snapshot, same answer —
    which is what makes every policy deterministic and lets the
    allocators own all telemetry (SIM071 enforces this).
    """

    #: Registry name; set by subclasses.
    name: str = ""

    @abc.abstractmethod
    def select(
        self,
        queue: Sequence[QueuedRequest],
        free: int,
        now: float,
        running: Sequence[RunningGrant],
    ) -> list[int]:
        """Indices of the queued requests to grant in this instant.

        Indices are ascending; the sum of the selected amounts must not
        exceed ``free``.  The selection must be maximal for the policy
        (the allocator grants it in one pass — grants only consume
        units, so nothing new becomes grantable until a release).
        """


class FifoPolicy(QueuePolicy):
    """Strict FIFO: grant the longest prefix that fits, stop at the
    first request that does not — the historical behaviour."""

    name = "fifo"

    def select(self, queue, free, now, running):
        picks: list[int] = []
        for index, request in enumerate(queue):
            if request.amount > free:
                break
            picks.append(index)
            free -= request.amount
        return picks


def _release_profile(
    free: int, running: Sequence[RunningGrant]
) -> list[tuple[float, int]]:
    """Cumulative (time, units available) steps from the running set.

    The first entry is ``(now=-inf sentinel not included)`` — callers
    seed with the current ``free``; each step adds a release.  Grants
    with :data:`UNKNOWN` deadlines never release.
    """
    steps: list[tuple[float, int]] = []
    available = free
    for grant in sorted(running, key=lambda g: (g.deadline, -g.amount)):
        if grant.deadline == UNKNOWN:
            break
        available += grant.amount
        steps.append((grant.deadline, available))
    return steps


class EasyBackfillPolicy(QueuePolicy):
    """EASY backfilling: protect the head's reservation, fill the gaps.

    The head's *shadow time* is the earliest projected instant it can
    start (walking the running grants' release times); the *extra
    units* are those free at the shadow time beyond the head's need.  A
    later request backfills iff it fits now and either (a) its estimate
    says it finishes before the shadow time, or (b) it consumes only
    extra units.  When a release time needed for the projection is
    unknown, the shadow is unknown and only branch (b) applies.
    """

    name = "easy-backfill"

    def select(self, queue, free, now, running):
        picks: list[int] = []
        for index, request in enumerate(queue):
            if request.amount > free:
                break
            picks.append(index)
            free -= request.amount
        if len(picks) == len(queue):
            return picks

        head = queue[len(picks)]
        shadow, extra = self._head_reservation(head, free, now, running)
        for index in range(len(picks) + 1, len(queue)):
            request = queue[index]
            if request.amount > free:
                continue
            finishes_before_shadow = (
                request.estimate != UNKNOWN
                and now + request.estimate <= shadow
            )
            within_extra = request.amount <= extra
            if finishes_before_shadow or within_extra:
                picks.append(index)
                free -= request.amount
                if not finishes_before_shadow:
                    extra -= request.amount
        return picks

    @staticmethod
    def _head_reservation(
        head: QueuedRequest,
        free: int,
        now: float,
        running: Sequence[RunningGrant],
    ) -> tuple[float, int]:
        """(shadow time, extra units) protecting the head's start."""
        for deadline, available in _release_profile(free, running):
            if available >= head.amount:
                return deadline, available - head.amount
        # Not enough known releases to ever start the head: its shadow
        # is unknown, so nothing may rely on finishing "before" it nor
        # on units being spare at it.
        return UNKNOWN, 0


class ConservativeBackfillPolicy(QueuePolicy):
    """Conservative backfilling: no queued request is ever delayed.

    Each queued request holds a reservation at its projected FIFO start
    (computed against the running grants' release times and the
    reservations of the requests ahead of it).  A request is granted
    now iff it fits and granting it leaves every other queued request's
    projection no later than before.
    """

    name = "conservative-backfill"

    def select(self, queue, free, now, running):
        picks: list[int] = []
        grants = list(running)
        remaining = list(range(len(queue)))
        free_now = free
        changed = True
        while changed:
            changed = False
            baseline = self._projected_starts(
                [queue[i] for i in remaining], free_now, now, grants
            )
            for position, index in enumerate(remaining):
                request = queue[index]
                if request.amount > free_now:
                    continue
                trial_rest = [
                    queue[i] for p, i in enumerate(remaining) if p != position
                ]
                trial_grants = grants + [
                    RunningGrant(
                        request.amount,
                        now + request.estimate
                        if request.estimate != UNKNOWN
                        else UNKNOWN,
                    )
                ]
                trial = self._projected_starts(
                    trial_rest, free_now - request.amount, now, trial_grants
                )
                rest_baseline = [
                    s for p, s in enumerate(baseline) if p != position
                ]
                if all(t <= b for t, b in zip(trial, rest_baseline)):
                    picks.append(index)
                    free_now -= request.amount
                    grants = trial_grants
                    remaining.pop(position)
                    changed = True
                    break
        return sorted(picks)

    @staticmethod
    def _projected_starts(
        queue: Sequence[QueuedRequest],
        free: int,
        now: float,
        running: Sequence[RunningGrant],
    ) -> list[float]:
        """Projected FIFO start time of every request in ``queue``.

        Simulates the availability timeline: requests start in order at
        the earliest instant enough units are free, then occupy their
        amount for their estimate (forever when unknown).
        """
        releases = list(running)
        available = free
        clock = now
        starts: list[float] = []
        for request in queue:
            while available < request.amount:
                pending = [g for g in releases if g.deadline > clock]
                future = [g for g in pending if g.deadline != UNKNOWN]
                if not future:
                    clock = UNKNOWN
                    break
                step = min(g.deadline for g in future)
                released = sum(
                    g.amount for g in future if g.deadline == step
                )
                releases = [
                    g for g in releases
                    if not (g.deadline == step and g.deadline != UNKNOWN)
                ]
                available += released
                clock = step
            starts.append(clock)
            if clock == UNKNOWN:
                # Everything behind an unstartable request is unknown
                # too (FIFO order): fill and stop simulating.
                starts.extend(UNKNOWN for _ in range(len(queue) - len(starts)))
                break
            available -= request.amount
            deadline = (
                clock + request.estimate
                if request.estimate != UNKNOWN
                else UNKNOWN
            )
            releases.append(RunningGrant(request.amount, deadline))
        return starts


class PlanPolicy(ConservativeBackfillPolicy):
    """Plan-based scheduling over a single pool.

    Projects the full schedule and grants exactly what the plan starts
    now — which over one resource coincides with conservative
    backfilling.  The joint cores+granules co-reservation that
    distinguishes plan-based scheduling is :class:`PlanCoordinator`.
    """

    name = "plan"


# ----------------------------------------------------------------------
# Registry (mirrors repro.network.allocators)
# ----------------------------------------------------------------------
#: Registry of named policies. Mutate through :func:`register_policy`.
_POLICIES: dict[str, QueuePolicy] = {}

#: The default policy name (the historical hard-coded behaviour).
DEFAULT_POLICY = "fifo"


def register_policy(name: str, policy: QueuePolicy) -> QueuePolicy:
    """Register ``policy`` under ``name`` (idempotent re-registration
    of the same object is allowed; rebinding a name is an error)."""
    existing = _POLICIES.get(name)
    if existing is not None and existing is not policy:
        raise ValueError(f"queue policy name {name!r} is already registered")
    _POLICIES[name] = policy
    return policy


def policy_names() -> list[str]:
    """All registered policy names."""
    return sorted(_POLICIES)


def resolve_policy(spec: "str | QueuePolicy | None") -> QueuePolicy:
    """Resolve a registry name, policy object, or ``None`` to a policy.

    ``None`` resolves to the default (``fifo``); :class:`QueuePolicy`
    instances pass through unchanged.
    """
    if spec is None:
        spec = DEFAULT_POLICY
    if isinstance(spec, QueuePolicy):
        return spec
    try:
        return _POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown queue policy {spec!r} (choose from "
            f"{', '.join(sorted(_POLICIES))})"
        ) from None


register_policy("fifo", FifoPolicy())
register_policy("easy-backfill", EasyBackfillPolicy())
register_policy("conservative-backfill", ConservativeBackfillPolicy())
register_policy("plan", PlanPolicy())


# ----------------------------------------------------------------------
# Joint cores + burst-buffer co-reservation (the "plan" policy proper)
# ----------------------------------------------------------------------
@dataclass
class JointReservation:
    """A granted cores+granules pair; release it when the job ends.

    The payload of the event returned by :meth:`PlanCoordinator.request`
    — both halves were claimed in the same simulated instant (the
    both-or-neither contract), and :meth:`release` returns both and
    replans the queue.
    """

    coordinator: "PlanCoordinator"
    allocation: object  # CoreAllocation
    lease: object       # BBLease
    released: bool = False
    #: The coordinator's running-table entry backing this reservation.
    _entry: Optional[tuple] = None

    def release(self) -> None:
        if not self.released:
            self.released = True
            self.coordinator._release(self)

    def __enter__(self) -> "JointReservation":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


@dataclass
class _PlanRequest:
    host: str
    cores: int
    granules: int
    size: float
    job: str
    estimate: float
    event: Event
    blocked: bool = False


class PlanCoordinator:
    """Plan-based joint scheduler over core allocators + a BB pool.

    The Kopanski/Rzadca insight: when jobs acquire their burst-buffer
    allocation and their cores *separately*, a job can hold one while
    queueing for the other (hold-and-wait), wasting whichever resource
    it already owns.  The coordinator instead plans a joint schedule —
    for each pending request, the earliest instant at which *both* its
    cores and its granules are available, honouring the reservations of
    every request ahead of it — and grants exactly the requests whose
    planned start is now, claiming both halves atomically.

    All requests for the managed resources must flow through the
    coordinator (the allocators' own queues stay empty); estimates are
    walltime hints — unknown estimates degrade the plan to
    grant-in-order-when-both-fit, never break it.
    """

    def __init__(self, compute, provisioner) -> None:
        self.compute = compute
        self.provisioner = provisioner
        self.env: Environment = provisioner.env
        self._pending: list[_PlanRequest] = []
        #: Running joint reservations: (host, cores, granules, deadline).
        self._running: list[tuple[str, int, int, float]] = []

    def request(
        self,
        host: str,
        cores: int,
        size: float,
        job: str = "",
        estimate: Optional[float] = None,
    ) -> Event:
        """Request ``cores`` on ``host`` plus a BB allocation of
        ``size`` bytes as one joint reservation.

        The returned event fires with a :class:`JointReservation` once
        the plan starts the job — both halves granted in the same
        instant, or neither.
        """
        granules = math.ceil(size / self.provisioner.granularity)
        pending = _PlanRequest(
            host=host,
            cores=cores,
            granules=granules,
            size=size,
            job=job,
            estimate=UNKNOWN if estimate is None else float(estimate),
            event=self.env.event(),
        )
        self._pending.append(pending)
        self._replan()
        if not pending.event.triggered and not pending.blocked:
            # Decision site: the joint plan could not start the job in
            # this instant.  Report the binding half (or both) through
            # the closed wait vocabulary.
            pending.blocked = True
            obs = self.env.obs
            if obs is not None:
                allocator = self.compute.allocator(host)
                if cores > allocator.free_cores:
                    obs.on_task_blocked(job, WaitCause.CORES, detail=host)
                if granules > self.provisioner.free_granules:
                    obs.on_task_blocked(
                        job, WaitCause.BB_CAPACITY, detail="bb-pool"
                    )
        return pending.event

    def _release(self, reservation: JointReservation) -> None:
        reservation.lease.release()
        reservation.allocation.release()
        if reservation._entry in self._running:
            self._running.remove(reservation._entry)
        self._replan()

    # ------------------------------------------------------------------
    def _replan(self) -> None:
        """Grant every pending request whose planned start is now."""
        now = self.env.now
        startable = self._plan_startable(now)
        for pending in startable:
            self._pending.remove(pending)
            obs = self.env.obs
            if obs is not None and pending.blocked:
                obs.on_task_unblocked(pending.job, WaitCause.CORES)
                obs.on_task_unblocked(pending.job, WaitCause.BB_CAPACITY)
            allocation = self.compute.allocator(pending.host).claim(
                pending.cores, task=pending.job
            )
            lease = self.provisioner.claim(pending.size, job=pending.job)
            if allocation is None or lease is None:  # pragma: no cover
                raise RuntimeError(
                    "plan coordinator claimed against a stale availability "
                    "snapshot (are requests bypassing the coordinator?)"
                )
            deadline = (
                now + pending.estimate
                if pending.estimate != UNKNOWN
                else UNKNOWN
            )
            entry = (pending.host, pending.cores, pending.granules, deadline)
            self._running.append(entry)
            pending.event.succeed(
                JointReservation(self, allocation, lease, _entry=entry)
            )

    def _plan_startable(self, now: float) -> list[_PlanRequest]:
        """The pending requests the joint plan starts at ``now``.

        Projects each pending request's start in arrival order against
        per-host core availability and granule availability, both
        stepped by the running reservations' deadlines and by the
        reservations planned for earlier pending requests.
        """
        hosts = {pending.host for pending in self._pending}
        free_cores = {
            host: self.compute.allocator(host).free_cores for host in hosts
        }
        free_granules = self.provisioner.free_granules
        # (deadline, host, cores, granules) release steps, known only.
        releases = [
            (deadline, host, cores, granules)
            for host, cores, granules, deadline in self._running
            if deadline != UNKNOWN
        ]
        startable: list[_PlanRequest] = []
        cores_at = dict(free_cores)
        granules_at = free_granules
        # Project in arrival order; each projection consumes capacity
        # from the timeline so later requests honour earlier plans.
        timeline: list[tuple[float, str, int, int]] = sorted(releases)
        for pending in self._pending:
            start = self._earliest_joint_start(
                pending, now, cores_at, granules_at, timeline
            )
            if start == now:
                startable.append(pending)
                cores_at[pending.host] -= pending.cores
                granules_at -= pending.granules
            if start != UNKNOWN:
                deadline = (
                    start + pending.estimate
                    if pending.estimate != UNKNOWN
                    else UNKNOWN
                )
                if start != now:
                    # Reserve the planned window: capacity disappears at
                    # `start` and (if known) returns at `deadline`.
                    timeline.append(
                        (start, pending.host, -pending.cores, -pending.granules)
                    )
                if deadline != UNKNOWN:
                    timeline.append(
                        (deadline, pending.host, pending.cores, pending.granules)
                    )
        return startable

    @staticmethod
    def _earliest_joint_start(
        pending: _PlanRequest,
        now: float,
        cores_at: dict[str, int],
        granules_at: int,
        timeline: list[tuple[float, str, int, int]],
    ) -> float:
        """Earliest t >= now with both resources simultaneously free."""
        times = sorted({now} | {t for t, *_ in timeline if t > now})
        for t in times:
            cores = cores_at[pending.host] + sum(
                c for when, host, c, _ in timeline
                if when <= t and when > now and host == pending.host
            )
            granules = granules_at + sum(
                g for when, _, _, g in timeline if when <= t and when > now
            )
            if cores >= pending.cores and granules >= pending.granules:
                return t
        return UNKNOWN
