"""Task-to-host scheduling policies.

The engine asks its ``host_assignment`` for a host when a task becomes
*ready* (all parents done), so schedulers can be dynamic: they see the
platform's load at decision time.  A scheduler is any callable
``task -> host name``; classes here additionally implement
``attach(engine)`` so the engine hands them its live state (allocators,
registry, BB mapping) at construction.
"""

from __future__ import annotations

import abc
import itertools
from typing import TYPE_CHECKING, Optional, Sequence

from repro.workflow.model import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.wms.engine import WorkflowEngine


class Scheduler(abc.ABC):
    """Base class for dynamic schedulers."""

    def __init__(self) -> None:
        self.engine: Optional["WorkflowEngine"] = None

    def attach(self, engine: "WorkflowEngine") -> None:
        """Called once by the engine before execution starts."""
        self.engine = engine

    @property
    def hosts(self) -> list[str]:
        assert self.engine is not None, "scheduler not attached to an engine"
        return self.engine.compute.hosts

    @abc.abstractmethod
    def __call__(self, task: Task) -> str:
        """Pick the host ``task`` will run on (called at ready time)."""


class RoundRobinScheduler(Scheduler):
    """Cycle through hosts in ready order — the classic baseline."""

    def __init__(self) -> None:
        super().__init__()
        self._counter = itertools.count()

    def __call__(self, task: Task) -> str:
        hosts = self.hosts
        return hosts[next(self._counter) % len(hosts)]


class LeastLoadedScheduler(Scheduler):
    """Pick the host with the most free cores at decision time.

    Ties break toward the shorter allocation queue, then host order, so
    decisions are deterministic.
    """

    def __call__(self, task: Task) -> str:
        assert self.engine is not None
        allocators = self.engine.compute.allocators
        return min(
            self.hosts,
            key=lambda h: (
                -allocators[h].free_cores,
                allocators[h].queue_length,
                h,
            ),
        )


class DataLocalityScheduler(Scheduler):
    """Pick the host already holding the most input bytes in its BB.

    On on-node architectures (Summit) this keeps consumers next to their
    producers' NVMe; on private-mode shared BBs it avoids the PFS
    fallback for cross-host files.  Hosts whose BB holds nothing are
    ranked by load (LeastLoaded fallback).
    """

    def __call__(self, task: Task) -> str:
        assert self.engine is not None
        engine = self.engine
        allocators = engine.compute.allocators

        def locality(host: str) -> float:
            bb = engine._bb_service(host)
            if bb is None:
                return 0.0
            return sum(f.size for f in task.inputs if bb.contains(f))

        return min(
            self.hosts,
            key=lambda h: (
                -locality(h),
                -allocators[h].free_cores,
                allocators[h].queue_length,
                h,
            ),
        )


def consistent_hash_assignment(hosts: Sequence[str]):
    """A static assignment: stable hash of the task name over hosts.

    Useful when reproducibility across runs matters more than balance
    (hash is Python's stable string hash via ``zlib.crc32``).
    """
    import zlib

    host_list = list(hosts)
    if not host_list:
        raise ValueError("need at least one host")

    def assign(task: Task) -> str:
        return host_list[zlib.crc32(task.name.encode()) % len(host_list)]

    return assign
