"""Data placement policies: which files go to the burst buffer.

A policy answers one question per file: **BB or PFS?**  The engine
resolves "BB" to the concrete service for the host involved (a node's
private allocation on Cori, its local NVMe on Summit).

The paper's experiments sweep a *fraction* of files placed in the BB
(:class:`FractionPlacement`); the heuristic policies
(:class:`SizeThresholdPlacement`, :class:`LocalityPlacement`) implement
the paper's stated future work — exploring the heuristic space of
placements — and are exercised by the ablation benchmarks.
"""

from __future__ import annotations

import abc
import enum
import math
from typing import Optional

from repro.workflow.model import File, Workflow


class Tier(str, enum.Enum):
    BB = "bb"
    PFS = "pfs"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FileRole(str, enum.Enum):
    """How a file relates to the workflow (drives placement scoping)."""

    INPUT = "input"             # external input (read but never produced)
    INTERMEDIATE = "intermediate"  # produced and consumed inside
    OUTPUT = "output"           # produced, never consumed

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify(file: File, workflow: Workflow) -> FileRole:
    """Role of ``file`` within ``workflow``.

    Matches the Workflow's own classification: files moved by stage-in
    tasks are inputs, not intermediates.
    """
    computed = workflow._computed_by_workflow(file.name)
    consumed = bool(workflow.consumers_of(file.name))
    if computed and consumed:
        return FileRole.INTERMEDIATE
    if computed:
        return FileRole.OUTPUT
    return FileRole.INPUT


class PlacementPolicy(abc.ABC):
    """Decides the storage tier of every file of a bound workflow."""

    def bind(self, workflow: Workflow) -> "PlacementPolicy":
        """Precompute per-file decisions for ``workflow`` (idempotent)."""
        return self

    @abc.abstractmethod
    def tier_of(self, file: File, workflow: Workflow) -> Tier:
        """Tier for ``file``: BB or PFS."""

    def staged_input_names(self, workflow: Workflow) -> list[str]:
        """External inputs this policy sends to the BB (stage-in work list)."""
        return [
            f.name
            for f in workflow.external_input_files()
            if self.tier_of(f, workflow) == Tier.BB
        ]


class FractionPlacement(PlacementPolicy):
    """Place a fixed fraction of each file class in the burst buffer.

    The paper's primary experimental knob: "we vary the number of
    workflow input files staged into the BB".  Files are ordered by name
    so the selection is deterministic; the first ``ceil(fraction × n)``
    go to the BB.

    Parameters
    ----------
    input_fraction / intermediate_fraction / output_fraction:
        Per-role fractions in [0, 1].
    """

    def __init__(
        self,
        input_fraction: float = 0.0,
        intermediate_fraction: float = 0.0,
        output_fraction: float = 0.0,
    ) -> None:
        for name, value in (
            ("input_fraction", input_fraction),
            ("intermediate_fraction", intermediate_fraction),
            ("output_fraction", output_fraction),
        ):
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.fractions = {
            FileRole.INPUT: input_fraction,
            FileRole.INTERMEDIATE: intermediate_fraction,
            FileRole.OUTPUT: output_fraction,
        }
        self._bb_files: Optional[set[str]] = None

    def bind(self, workflow: Workflow) -> "FractionPlacement":
        chosen: set[str] = set()
        for role, files in (
            (FileRole.INPUT, workflow.external_input_files()),
            (FileRole.INTERMEDIATE, workflow.intermediate_files()),
            (FileRole.OUTPUT, workflow.output_files()),
        ):
            fraction = self.fractions[role]
            count = math.ceil(fraction * len(files) - 1e-9)
            chosen.update(f.name for f in sorted(files, key=lambda f: f.name)[:count])
        self._bb_files = chosen
        return self

    def tier_of(self, file: File, workflow: Workflow) -> Tier:
        if self._bb_files is None:
            self.bind(workflow)
        assert self._bb_files is not None
        return Tier.BB if file.name in self._bb_files else Tier.PFS


def AllBB() -> FractionPlacement:
    """Everything in the burst buffer (paper Figures 6–8 configuration)."""
    return FractionPlacement(1.0, 1.0, 1.0)


def AllPFS() -> FractionPlacement:
    """Everything on the PFS (the traditional baseline)."""
    return FractionPlacement(0.0, 0.0, 0.0)


class ExplicitPlacement(PlacementPolicy):
    """Per-file tier assignments (the placement search space).

    Files not in the mapping default to ``default`` (PFS).  Used by the
    placement explorer to evaluate arbitrary points of the design space.
    """

    def __init__(
        self,
        bb_files: Optional[set[str]] = None,
        default: Tier = Tier.PFS,
    ) -> None:
        self.bb_files = set(bb_files or ())
        self.default = default

    def tier_of(self, file: File, workflow: Workflow) -> Tier:
        if file.name in self.bb_files:
            return Tier.BB
        return self.default

    def with_file(self, name: str) -> "ExplicitPlacement":
        """A copy with one more file in the BB (search-move constructor)."""
        return ExplicitPlacement(self.bb_files | {name}, self.default)

    def without_file(self, name: str) -> "ExplicitPlacement":
        return ExplicitPlacement(self.bb_files - {name}, self.default)


class SizeThresholdPlacement(PlacementPolicy):
    """Heuristic: place files on one tier by size.

    With ``large_to_bb=True`` files of at least ``threshold`` bytes go to
    the BB (bandwidth-bound files benefit most from the fast tier);
    otherwise *small* files go to the BB (latency-bound metadata-heavy
    patterns benefit and capacity pressure stays low).
    """

    def __init__(self, threshold: float, large_to_bb: bool = True) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.large_to_bb = large_to_bb

    def tier_of(self, file: File, workflow: Workflow) -> Tier:
        is_large = file.size >= self.threshold
        return Tier.BB if (is_large == self.large_to_bb) else Tier.PFS


class LocalityPlacement(PlacementPolicy):
    """Heuristic: intermediates to the BB, everything else to the PFS.

    Intermediate files have both their producer and consumers inside the
    workflow, so they are the files whose placement the workflow system
    fully controls — the "staging in/out of (intermediate) workflow
    data" the paper's introduction motivates.
    """

    def __init__(self, inputs_to_bb: bool = False) -> None:
        self.inputs_to_bb = inputs_to_bb

    def tier_of(self, file: File, workflow: Workflow) -> Tier:
        role = classify(file, workflow)
        if role == FileRole.INTERMEDIATE:
            return Tier.BB
        if role == FileRole.INPUT and self.inputs_to_bb:
            return Tier.BB
        return Tier.PFS
