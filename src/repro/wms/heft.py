"""HEFT: Heterogeneous Earliest-Finish-Time static scheduling.

The classic list scheduler (Topcuoglu et al.), adapted to multicore
hosts: tasks are ranked by upward rank (critical-path length including
communication), then greedily placed on the host minimizing their
earliest finish time, accounting for

* per-host compute speed (Amdahl with the paper's α = 0 headline model),
* gang core requirements against each host's core count,
* file transfer cost between producer and consumer hosts, estimated
  from the route's bottleneck bandwidth.

The result is a static ``task → host`` mapping usable as the engine's
``host_assignment``.  HEFT plans with *estimates*; the DES execution
then shows what contention does to the plan — a gap worth measuring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.platform.runtime import Platform
from repro.workflow.model import Task, Workflow


def _compute_estimate(task: Task, platform: Platform, host: str) -> float:
    """Estimated compute seconds of ``task`` on ``host`` (Eq. 4 model)."""
    spec = platform.host(host)
    cores = min(task.cores, spec.cores)
    return task.flops / spec.core_speed / cores


def _transfer_estimate(
    platform: Platform, src: str, dst: str, n_bytes: float
) -> float:
    """Estimated seconds to move ``n_bytes`` from ``src`` to ``dst``."""
    if src == dst or n_bytes <= 0:
        return 0.0
    route = platform.route(src, dst)
    bandwidth = route.bottleneck_bandwidth
    if bandwidth == float("inf"):
        return route.latency
    return route.latency + n_bytes / bandwidth


@dataclass
class _HostTimeline:
    """Core occupancy of one host: list of (end_time, cores) holds."""

    total_cores: int
    holds: list[tuple[float, int]] = field(default_factory=list)

    def earliest_start(self, cores: int, not_before: float) -> float:
        """Earliest time ``cores`` are simultaneously free ≥ not_before."""
        candidates = [not_before] + [
            end for end, _ in self.holds if end > not_before
        ]
        for t in sorted(candidates):
            used = sum(c for end, c in self.holds if end > t)
            if self.total_cores - used >= cores:
                return t
        return max(end for end, _ in self.holds)  # pragma: no cover

    def reserve(self, start: float, end: float, cores: int) -> None:
        # Conservative model: a hold occupies its cores until `end`
        # regardless of `start` (earliest_start already respects gaps
        # coarsely; exact interval packing is overkill for a planner).
        self.holds.append((end, cores))


def heft_assignment(
    workflow: Workflow,
    platform: Platform,
    hosts: Sequence[str],
    comm_bytes: Optional[Callable[[Task, Task], float]] = None,
) -> Callable[[Task], str]:
    """Compute a HEFT task→host mapping; returns an assignment callable.

    ``comm_bytes(parent, child)`` overrides the estimated data volume on
    each dependency edge (default: the bytes of the files the child
    reads from the parent).
    """
    if not hosts:
        raise ValueError("need at least one host")
    host_list = list(hosts)

    if comm_bytes is None:
        def comm_bytes(parent: Task, child: Task) -> float:
            produced = {f.name: f.size for f in parent.outputs}
            return sum(
                produced[f.name] for f in child.inputs if f.name in produced
            )

    # Mean bandwidth across host pairs for rank estimation.
    pair_bandwidths = []
    for i, a in enumerate(host_list):
        for b in host_list[i + 1:]:
            route = platform.route(a, b)
            if route.bottleneck_bandwidth != float("inf"):
                pair_bandwidths.append(route.bottleneck_bandwidth)
    mean_bandwidth = (
        sum(pair_bandwidths) / len(pair_bandwidths)
        if pair_bandwidths
        else float("inf")
    )

    def mean_compute(task: Task) -> float:
        return sum(
            _compute_estimate(task, platform, h) for h in host_list
        ) / len(host_list)

    def mean_comm(parent: Task, child: Task) -> float:
        n = comm_bytes(parent, child)
        if n <= 0 or mean_bandwidth == float("inf"):
            return 0.0
        # Expected cost assuming a (len-1)/len chance of crossing hosts.
        cross_probability = (len(host_list) - 1) / len(host_list)
        return cross_probability * n / mean_bandwidth

    # Upward ranks (reverse topological order).
    rank: dict[str, float] = {}
    for task in reversed(workflow.topological_order()):
        children = workflow.children(task.name)
        rank[task.name] = mean_compute(task) + max(
            (
                mean_comm(task, child) + rank[child.name]
                for child in children
            ),
            default=0.0,
        )

    # Greedy EFT placement in decreasing rank order.
    timelines = {
        h: _HostTimeline(total_cores=platform.host(h).cores)
        for h in host_list
    }
    placement: dict[str, str] = {}
    finish: dict[str, float] = {}

    for task in sorted(workflow, key=lambda t: -rank[t.name]):
        best_host, best_start, best_finish = None, 0.0, float("inf")
        for host in host_list:
            ready = 0.0
            for parent in workflow.parents(task.name):
                arrival = finish[parent.name] + _transfer_estimate(
                    platform, placement[parent.name], host,
                    comm_bytes(parent, task),
                )
                ready = max(ready, arrival)
            cores = min(task.cores, timelines[host].total_cores)
            start = timelines[host].earliest_start(cores, ready)
            end = start + _compute_estimate(task, platform, host)
            if end < best_finish:
                best_host, best_start, best_finish = host, start, end
        assert best_host is not None
        cores = min(task.cores, timelines[best_host].total_cores)
        timelines[best_host].reserve(best_start, best_finish, cores)
        placement[task.name] = best_host
        finish[task.name] = best_finish

    def assign(task: Task) -> str:
        return placement[task.name]

    assign.placement = placement  # type: ignore[attr-defined] - introspection
    return assign
