"""Tests for the analysis helpers (curves, summaries, Gantt)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    crossover_point,
    describe,
    per_group_summary,
    plateau_fraction,
    speedup_curve,
)
from repro.traces import ExecutionTrace, TaskRecord, render_gantt


# ----------------------------------------------------------------------
# speedup_curve
# ----------------------------------------------------------------------
def test_speedup_curve_basic():
    assert speedup_curve([100, 50, 25]) == pytest.approx([1.0, 2.0, 4.0])


def test_speedup_curve_validation():
    with pytest.raises(ValueError):
        speedup_curve([])
    with pytest.raises(ValueError):
        speedup_curve([0.0, 1.0])
    with pytest.raises(ValueError):
        speedup_curve([1.0, -2.0])


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=20))
def test_speedup_curve_starts_at_one(makespans):
    assert speedup_curve(makespans)[0] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# plateau_fraction
# ----------------------------------------------------------------------
def test_plateau_detected():
    xs = [0.0, 0.25, 0.5, 0.75, 1.0]
    ys = [100, 80, 60, 59.9, 59.8]  # flattens after 0.5
    assert plateau_fraction(xs, ys) == 0.5


def test_plateau_never_flattens_returns_last():
    xs = [0.0, 0.5, 1.0]
    ys = [100, 80, 60]
    assert plateau_fraction(xs, ys) == 1.0


def test_plateau_validation():
    with pytest.raises(ValueError):
        plateau_fraction([0.0], [1.0])
    with pytest.raises(ValueError):
        plateau_fraction([1.0, 0.0], [1.0, 2.0])  # xs not increasing


# ----------------------------------------------------------------------
# crossover_point
# ----------------------------------------------------------------------
def test_crossover_interpolated():
    xs = [0.0, 1.0]
    a = [0.0, 2.0]
    b = [1.0, 1.0]
    assert crossover_point(xs, a, b) == pytest.approx(0.5)


def test_crossover_none_when_disjoint():
    assert crossover_point([0, 1], [1, 2], [3, 4]) is None


def test_crossover_at_sample():
    assert crossover_point([0, 1, 2], [3, 2, 1], [3, 0, 0]) == 0


def test_crossover_validation():
    with pytest.raises(ValueError):
        crossover_point([0], [1], [1])


# ----------------------------------------------------------------------
# describe / per_group_summary
# ----------------------------------------------------------------------
def test_describe():
    s = describe([1.0, 2.0, 3.0])
    assert s.n == 3
    assert s.mean == pytest.approx(2.0)
    assert s.median == 2.0
    assert s.min == 1.0 and s.max == 3.0


def test_describe_empty_rejected():
    with pytest.raises(ValueError):
        describe([])


def test_per_group_summary():
    trace = ExecutionTrace("wf")
    trace.add_record(TaskRecord(name="a", group="g1", host="h", cores=1, end=2.0))
    trace.add_record(TaskRecord(name="b", group="g1", host="h", cores=1, end=4.0))
    trace.add_record(TaskRecord(name="c", group="g2", host="h", cores=1, end=6.0))
    summary = per_group_summary(trace)
    assert summary["g1"].mean == pytest.approx(3.0)
    assert summary["g2"].n == 1


# ----------------------------------------------------------------------
# Gantt
# ----------------------------------------------------------------------
def make_trace():
    trace = ExecutionTrace("wf")
    trace.add_record(
        TaskRecord(
            name="t1", group="g", host="h", cores=1,
            start=0.0, read_start=0.0, read_end=1.0,
            compute_end=3.0, write_end=4.0, end=4.0,
        )
    )
    trace.add_record(
        TaskRecord(
            name="t2", group="g", host="h", cores=1,
            start=4.0, read_start=4.0, read_end=5.0,
            compute_end=7.0, write_end=8.0, end=8.0,
        )
    )
    return trace


def test_gantt_renders_all_tasks():
    text = render_gantt(make_trace())
    assert "t1" in text and "t2" in text
    assert "r" in text and "#" in text and "w" in text


def test_gantt_io_footer_uses_format_size():
    from repro.platform.units import MiB
    from repro.traces.events import IOOperation

    trace = make_trace()
    trace.log_io(IOOperation(
        task="t1", file="f1", service="bb", kind="read",
        size=32 * MiB, start=0.0, end=1.0,
    ))
    trace.log_io(IOOperation(
        task="t2", file="f2", service="pfs", kind="write",
        size=16 * MiB, start=4.0, end=5.0,
    ))
    text = render_gantt(trace)
    assert "io: 48.0 MiB in 2 operations" in text
    assert "bb: 32.0 MiB" in text and "pfs: 16.0 MiB" in text


def test_gantt_no_io_footer_without_operations():
    assert "io:" not in render_gantt(make_trace())


def test_gantt_empty_trace():
    assert "empty" in render_gantt(ExecutionTrace())


def test_gantt_truncates_long_traces():
    trace = ExecutionTrace("big")
    for i in range(50):
        trace.add_record(
            TaskRecord(
                name=f"t{i:02d}", group="g", host="h", cores=1,
                start=float(i), read_start=float(i), read_end=i + 0.2,
                compute_end=i + 0.8, write_end=i + 1.0, end=i + 1.0,
            )
        )
    text = render_gantt(trace, max_tasks=10)
    assert "40 more tasks" in text


def test_gantt_width_validation():
    with pytest.raises(ValueError):
        render_gantt(make_trace(), width=5)
