"""Tests for Link validation and RoutingTable lookups."""

import pytest

from repro.network import Link, Route, RoutingTable


# ----------------------------------------------------------------------
# Link
# ----------------------------------------------------------------------
def test_link_basic_construction():
    l = Link("fabric", bandwidth=1e9, latency=1e-6)
    assert l.bandwidth == 1e9
    assert l.latency == 1e-6


def test_link_requires_positive_bandwidth():
    with pytest.raises(ValueError):
        Link("bad", bandwidth=0)
    with pytest.raises(ValueError):
        Link("bad", bandwidth=-5)


def test_link_rejects_infinite_bandwidth():
    with pytest.raises(ValueError):
        Link("bad", bandwidth=float("inf"))


def test_link_rejects_negative_latency():
    with pytest.raises(ValueError):
        Link("bad", bandwidth=1.0, latency=-1)


def test_link_rejects_empty_name():
    with pytest.raises(ValueError):
        Link("", bandwidth=1.0)


def test_link_concurrency_penalty_validation():
    with pytest.raises(ValueError):
        Link("bad", bandwidth=1.0, concurrency_penalty=1.0)
    with pytest.raises(ValueError):
        Link("bad", bandwidth=1.0, concurrency_penalty=-0.1)


def test_effective_bandwidth_no_penalty():
    l = Link("l", bandwidth=100.0)
    assert l.effective_bandwidth(1) == 100.0
    assert l.effective_bandwidth(10) == 100.0


def test_effective_bandwidth_with_penalty():
    l = Link("l", bandwidth=100.0, concurrency_penalty=0.05)
    assert l.effective_bandwidth(1) == 100.0
    assert l.effective_bandwidth(2) == pytest.approx(95.0)
    assert l.effective_bandwidth(11) == pytest.approx(50.0)


def test_effective_bandwidth_floor_at_ten_percent():
    l = Link("l", bandwidth=100.0, concurrency_penalty=0.1)
    assert l.effective_bandwidth(1000) == pytest.approx(10.0)


def test_link_is_hashable_and_frozen():
    l = Link("l", bandwidth=1.0)
    assert {l: 1}[l] == 1
    with pytest.raises(AttributeError):
        l.bandwidth = 2.0  # type: ignore[misc]


# ----------------------------------------------------------------------
# Route
# ----------------------------------------------------------------------
def test_route_latency_sums_links():
    a = Link("a", bandwidth=1.0, latency=0.5)
    b = Link("b", bandwidth=2.0, latency=0.25)
    assert Route([a, b]).latency == pytest.approx(0.75)


def test_route_bottleneck_bandwidth():
    a = Link("a", bandwidth=10.0)
    b = Link("b", bandwidth=3.0)
    assert Route([a, b]).bottleneck_bandwidth == 3.0


def test_empty_route_properties():
    r = Route([])
    assert r.latency == 0.0
    assert r.bottleneck_bandwidth == float("inf")
    assert len(r) == 0


def test_route_concatenation():
    a = Link("a", bandwidth=1.0)
    b = Link("b", bandwidth=1.0)
    combined = Route([a]) + Route([b])
    assert list(combined) == [a, b]


# ----------------------------------------------------------------------
# RoutingTable
# ----------------------------------------------------------------------
def test_routing_table_symmetric_lookup():
    table = RoutingTable()
    l = Link("l", bandwidth=1.0)
    table.add_route("cn1", "pfs", [l])
    assert list(table.route("cn1", "pfs")) == [l]
    assert list(table.route("pfs", "cn1")) == [l]


def test_routing_table_loopback_is_empty_route():
    table = RoutingTable()
    r = table.route("host", "host")
    assert len(r) == 0


def test_routing_table_missing_route_raises():
    table = RoutingTable()
    with pytest.raises(KeyError):
        table.route("x", "y")


def test_routing_table_self_route_registration_rejected():
    table = RoutingTable()
    with pytest.raises(ValueError):
        table.add_route("a", "a", [])


def test_routing_table_has_route():
    table = RoutingTable()
    table.add_route("a", "b", [Link("l", bandwidth=1.0)])
    assert table.has_route("a", "b")
    assert table.has_route("b", "a")
    assert table.has_route("c", "c")
    assert not table.has_route("a", "c")


def test_routing_table_links_collection():
    table = RoutingTable()
    l1, l2 = Link("l1", bandwidth=1.0), Link("l2", bandwidth=1.0)
    table.add_route("a", "b", [l1])
    table.add_route("a", "c", [l1, l2])
    assert table.links == {l1, l2}
    assert len(table) == 2
