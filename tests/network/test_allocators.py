"""Tests for the named rate-allocator registry."""

import pytest

from repro.network import (
    DEFAULT_ALLOCATOR,
    allocator_names,
    equal_split_rates,
    max_min_fair_rates,
    register_allocator,
    resolve_allocator,
)


def test_default_resolves_to_max_min():
    assert DEFAULT_ALLOCATOR == "max-min"
    assert resolve_allocator(None) is max_min_fair_rates
    assert resolve_allocator("max-min") is max_min_fair_rates


def test_named_lookup():
    assert resolve_allocator("equal-split") is equal_split_rates


def test_callable_passthrough():
    def custom(flow_links, capacities, flow_caps=None):
        return [0.0] * len(flow_links)

    assert resolve_allocator(custom) is custom


def test_unknown_name_lists_choices():
    with pytest.raises(ValueError, match="unknown allocator 'nope'"):
        resolve_allocator("nope")


def test_incremental_registered_lazily():
    names = allocator_names()
    assert {"max-min", "equal-split", "incremental"} <= set(names)
    from repro.perf import incremental_max_min_rates

    assert resolve_allocator("incremental") is incremental_max_min_rates


def test_reregistering_same_callable_is_idempotent():
    register_allocator("max-min", max_min_fair_rates)  # no error


def test_rebinding_name_is_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_allocator("max-min", equal_split_rates)
