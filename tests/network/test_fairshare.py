"""Unit and property tests for the max-min fair allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fairshare import allocation_is_feasible, max_min_fair_rates


def test_single_flow_gets_full_link():
    rates = max_min_fair_rates([["l"]], {"l": 100.0})
    assert rates == [100.0]


def test_two_flows_split_equally():
    rates = max_min_fair_rates([["l"], ["l"]], {"l": 100.0})
    assert rates == [50.0, 50.0]


def test_disjoint_flows_do_not_interact():
    rates = max_min_fair_rates([["a"], ["b"]], {"a": 10.0, "b": 70.0})
    assert rates == [10.0, 70.0]


def test_bottleneck_frees_capacity_elsewhere():
    """Classic max-min example: one flow crosses both links.

    Flows: f0 on (a, b), f1 on (a), f2 on (b), capacities a=100, b=10.
    Progressive filling: all rise to 5 → b saturates (f0, f2 frozen at 5).
    f1 continues to 95 (a has 100 − 5 = 95 left).
    """
    rates = max_min_fair_rates(
        [["a", "b"], ["a"], ["b"]], {"a": 100.0, "b": 10.0}
    )
    assert rates == pytest.approx([5.0, 95.0, 5.0])


def test_flow_cap_limits_rate():
    rates = max_min_fair_rates([["l"], ["l"]], {"l": 100.0}, flow_caps=[10.0, float("inf")])
    assert rates == pytest.approx([10.0, 90.0])


def test_capped_flow_without_links():
    rates = max_min_fair_rates([[]], {}, flow_caps=[42.0])
    assert rates == [42.0]


def test_uncapped_flow_without_links_rejected():
    with pytest.raises(ValueError, match="no links and no cap"):
        max_min_fair_rates([[]], {})


def test_unknown_link_rejected():
    with pytest.raises(ValueError, match="unknown link"):
        max_min_fair_rates([["ghost"]], {"l": 1.0})


def test_non_positive_capacity_rejected():
    with pytest.raises(ValueError, match="non-positive"):
        max_min_fair_rates([["l"]], {"l": 0.0})


def test_flow_caps_length_mismatch_rejected():
    with pytest.raises(ValueError, match="length"):
        max_min_fair_rates([["l"]], {"l": 1.0}, flow_caps=[1.0, 2.0])


def test_no_flows_returns_empty():
    assert max_min_fair_rates([], {"l": 5.0}) == []


def test_duplicate_link_in_route_counts_once():
    """A flow listing the same link twice must not get half capacity."""
    rates = max_min_fair_rates([["l", "l"]], {"l": 100.0})
    assert rates == [100.0]


def test_three_level_waterfill():
    """Caps create a three-stage fill: 5, then 20, then the rest."""
    rates = max_min_fair_rates(
        [["l"], ["l"], ["l"]],
        {"l": 100.0},
        flow_caps=[5.0, 20.0, float("inf")],
    )
    assert rates == pytest.approx([5.0, 20.0, 75.0])


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
link_ids = st.sampled_from(list("abcdef"))


@st.composite
def scenarios(draw):
    caps = {
        lid: draw(st.floats(min_value=1.0, max_value=1000.0))
        for lid in "abcdef"
    }
    n_flows = draw(st.integers(min_value=1, max_value=12))
    flows = [
        draw(st.lists(link_ids, min_size=1, max_size=4)) for _ in range(n_flows)
    ]
    return flows, caps


@given(scenarios())
@settings(max_examples=100)
def test_allocation_is_always_feasible(scenario):
    flows, caps = scenario
    rates = max_min_fair_rates(flows, caps)
    assert allocation_is_feasible(flows, caps, rates)


@given(scenarios())
@settings(max_examples=100)
def test_all_rates_positive(scenario):
    """Max-min fairness never starves a flow."""
    flows, caps = scenario
    rates = max_min_fair_rates(flows, caps)
    assert all(r > 0 for r in rates)


@given(scenarios())
@settings(max_examples=100)
def test_work_conserving_bottleneck_exists(scenario):
    """Every flow is limited by at least one saturated link (work conservation)."""
    flows, caps = scenario
    rates = max_min_fair_rates(flows, caps)
    load = {lid: 0.0 for lid in caps}
    for links, rate in zip(flows, rates):
        for lid in set(links):
            load[lid] += rate
    for links in flows:
        assert any(load[lid] >= caps[lid] * (1 - 1e-6) for lid in set(links))


@given(scenarios())
@settings(max_examples=100)
def test_max_min_property(scenario):
    """No flow's rate can rise without lowering some equal-or-poorer flow.

    Equivalent check: for each flow f there is a saturated link on f's path
    where f's rate is maximal among the flows crossing that link.
    """
    flows, caps = scenario
    rates = max_min_fair_rates(flows, caps)
    load = {lid: 0.0 for lid in caps}
    for links, rate in zip(flows, rates):
        for lid in set(links):
            load[lid] += rate
    for i, links in enumerate(flows):
        has_witness = False
        for lid in set(links):
            if load[lid] >= caps[lid] * (1 - 1e-6):
                users = [
                    rates[j]
                    for j, other in enumerate(flows)
                    if lid in set(other)
                ]
                if rates[i] >= max(users) - 1e-6 * max(users):
                    has_witness = True
                    break
        assert has_witness, f"flow {i} is not max-min justified"


@given(
    st.integers(min_value=1, max_value=50),
    st.floats(min_value=1.0, max_value=1e6),
)
def test_equal_split_for_identical_flows(n, cap):
    rates = max_min_fair_rates([["l"]] * n, {"l": cap})
    assert all(r == pytest.approx(cap / n) for r in rates)


# ----------------------------------------------------------------------
# Regression: epsilon-scale caps and capacities (absolute-tolerance bug)
# ----------------------------------------------------------------------
def test_epsilon_scale_caps_resolved_exactly():
    # Old absolute freeze test (rate >= cap - 1e-12) froze the second
    # flow at 1e-12 because its 2e-12 cap was "within epsilon".
    rates = max_min_fair_rates(
        [["l"], ["l"]], {"l": 1.0}, flow_caps=[1e-12, 2e-12]
    )
    assert rates[0] == pytest.approx(1e-12, rel=1e-6)
    assert rates[1] == pytest.approx(2e-12, rel=1e-6)


def test_epsilon_scale_link_capacity_redistributed():
    # Old link-saturation test (remaining <= eps*cap + eps) declared a
    # 2e-12 link saturated immediately, freezing the uncapped flow at
    # the capped flow's rate instead of handing it the leftover.
    rates = max_min_fair_rates(
        [["l"], ["l"]], {"l": 2e-12}, flow_caps=[0.5e-12, float("inf")]
    )
    assert rates[0] == pytest.approx(0.5e-12, rel=1e-6)
    assert rates[1] == pytest.approx(1.5e-12, rel=1e-6)


def test_nano_scale_cap_ladder():
    caps = [1e-12, 5e-12, 1e-11, 1e-10, 1e-9]
    rates = max_min_fair_rates([["l"]] * 5, {"l": 1.0}, flow_caps=caps)
    for rate, cap in zip(rates, caps):
        assert rate == pytest.approx(cap, rel=1e-6)


def test_tiny_capacity_equal_split():
    rates = max_min_fair_rates([["l"], ["l"]], {"l": 1e-9})
    assert rates[0] == pytest.approx(0.5e-9, rel=1e-6)
    assert rates[1] == pytest.approx(0.5e-9, rel=1e-6)


def test_mixed_magnitude_links():
    # One flow crosses both a picoscale and a megascale link; the other
    # two see only one of them.  The tiny link must bottleneck flow 1
    # without dragging flow 2's megascale share down.
    rates = max_min_fair_rates(
        [["tiny"], ["tiny", "big"], ["big"]],
        {"tiny": 2e-12, "big": 2e6},
    )
    assert rates[0] == pytest.approx(1e-12, rel=1e-6)
    assert rates[1] == pytest.approx(1e-12, rel=1e-6)
    assert rates[2] == pytest.approx(2e6 - 1e-12, rel=1e-6)
