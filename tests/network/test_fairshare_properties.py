"""Property-based tests for max-min fair allocation.

Three invariants define max-min fairness, and hypothesis checks them on
randomly generated topologies:

* **feasibility** — no link carries more than its capacity and no flow
  exceeds its cap;
* **work conservation** — a flow is only held below its cap if one of
  its links is saturated;
* **max-min optimality** — every flow below its cap has a saturated
  link on which it is (one of) the largest flows, i.e. its rate cannot
  be raised without lowering an equal-or-smaller flow.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fairshare import allocation_is_feasible, max_min_fair_rates

_REL = 1e-6

LINK_POOL = ("l0", "l1", "l2", "l3")


@st.composite
def fairshare_problems(draw):
    n_links = draw(st.integers(min_value=1, max_value=len(LINK_POOL)))
    links = LINK_POOL[:n_links]
    # Capacities deliberately span the old absolute-epsilon regime
    # (1e-12) up to big-link scale: the freeze tolerances must behave
    # identically across fifteen orders of magnitude.
    capacities = {
        link: draw(
            st.floats(
                min_value=1e-12, max_value=1e6, allow_nan=False, allow_infinity=False
            )
        )
        for link in links
    }
    n_flows = draw(st.integers(min_value=1, max_value=6))
    flow_links = [
        draw(
            st.lists(
                st.sampled_from(links), min_size=1, max_size=n_links, unique=True
            )
        )
        for _ in range(n_flows)
    ]
    flow_caps = [
        draw(
            st.one_of(
                st.just(float("inf")),
                st.floats(
                    min_value=1e-15,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            )
        )
        for _ in range(n_flows)
    ]
    return flow_links, capacities, flow_caps


def _loads(flow_links, rates, capacities):
    load = {link: 0.0 for link in capacities}
    for links, rate in zip(flow_links, rates):
        for link in set(links):
            load[link] += rate
    return load


def _saturated(load, capacities, link):
    return load[link] >= capacities[link] * (1 - _REL)


@settings(max_examples=200, deadline=None)
@given(fairshare_problems())
def test_allocation_is_feasible(problem):
    flow_links, capacities, flow_caps = problem
    rates = max_min_fair_rates(flow_links, capacities, flow_caps)
    assert allocation_is_feasible(flow_links, capacities, rates)
    for rate, cap in zip(rates, flow_caps):
        assert rate <= cap * (1 + _REL)
        assert rate >= 0.0


@settings(max_examples=200, deadline=None)
@given(fairshare_problems())
def test_allocation_is_work_conserving(problem):
    flow_links, capacities, flow_caps = problem
    rates = max_min_fair_rates(flow_links, capacities, flow_caps)
    load = _loads(flow_links, rates, capacities)
    for links, rate, cap in zip(flow_links, rates, flow_caps):
        if rate >= cap * (1 - _REL):
            continue  # held by its own cap, not by the network
        assert any(_saturated(load, capacities, link) for link in links), (
            f"flow at rate {rate} below cap {cap} has no saturated link"
        )


@settings(max_examples=200, deadline=None)
@given(fairshare_problems())
def test_allocation_is_max_min_optimal(problem):
    flow_links, capacities, flow_caps = problem
    rates = max_min_fair_rates(flow_links, capacities, flow_caps)
    load = _loads(flow_links, rates, capacities)
    users = {link: [] for link in capacities}
    for i, links in enumerate(flow_links):
        for link in set(links):
            users[link].append(i)
    for i, (links, rate, cap) in enumerate(zip(flow_links, rates, flow_caps)):
        if rate >= cap * (1 - _REL):
            continue
        # Bottleneck condition: some saturated link of i where i's rate
        # is maximal among the link's users (within tolerance).
        assert any(
            _saturated(load, capacities, link)
            and all(
                rate >= rates[j] * (1 - _REL) or rates[j] <= rate + _REL
                for j in users[link]
            )
            for link in links
        ), f"flow {i} (rate {rate}) is not bottlenecked anywhere"
