"""Integration tests for the event-driven flow network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import des
from repro.network import FlowNetwork, Link


def run_transfers(transfers):
    """Run a set of (start_time, size, links, kwargs) transfers.

    Returns {label: completion_time}.
    """
    env = des.Environment()
    net = FlowNetwork(env)
    done_at = {}

    def starter(env, net, start, size, links, kwargs, label):
        if start > 0:
            yield env.timeout(start)
        yield net.transfer(size, links, label=label, **kwargs)
        done_at[label] = env.now

    for i, (start, size, links, kwargs) in enumerate(transfers):
        env.process(starter(env, net, start, size, links, kwargs, f"t{i}"))
    env.run()
    return done_at


def test_single_transfer_duration():
    l = Link("l", bandwidth=100.0)
    done = run_transfers([(0, 1000, [l], {})])
    assert done["t0"] == pytest.approx(10.0)


def test_latency_added_once():
    l = Link("l", bandwidth=100.0, latency=2.0)
    done = run_transfers([(0, 100, [l], {})])
    assert done["t0"] == pytest.approx(3.0)


def test_extra_latency_parameter():
    l = Link("l", bandwidth=100.0)
    done = run_transfers([(0, 100, [l], {"latency": 5.0})])
    assert done["t0"] == pytest.approx(6.0)


def test_two_concurrent_flows_share_fairly():
    l = Link("l", bandwidth=100.0)
    done = run_transfers([(0, 1000, [l], {}), (0, 1000, [l], {})])
    assert done["t0"] == pytest.approx(20.0)
    assert done["t1"] == pytest.approx(20.0)


def test_rate_recomputed_when_flow_leaves():
    """1000B and 250B sharing 100B/s: the small one leaves at t=10 and the
    big one speeds back up, finishing at 12.5 instead of 15."""
    l = Link("l", bandwidth=100.0)
    done = run_transfers([(0, 1000, [l], {}), (5.0, 250, [l], {})])
    assert done["t1"] == pytest.approx(10.0)
    assert done["t0"] == pytest.approx(12.5)


def test_rate_recomputed_when_flow_joins():
    l = Link("l", bandwidth=100.0)
    done = run_transfers([(0, 500, [l], {}), (2.5, 500, [l], {})])
    # t0: 250B alone by t=2.5, then 50B/s → 250 more bytes takes 5s → 7.5
    assert done["t0"] == pytest.approx(7.5)
    # t1: 50B/s until t0 leaves at 7.5 (250B done), then 100B/s → 10.0
    assert done["t1"] == pytest.approx(10.0)


def test_max_rate_cap_respected():
    l = Link("l", bandwidth=100.0)
    done = run_transfers([(0, 100, [l], {"max_rate": 10.0})])
    assert done["t0"] == pytest.approx(10.0)


def test_capped_flow_leaves_bandwidth_for_others():
    l = Link("l", bandwidth=100.0)
    done = run_transfers(
        [(0, 100, [l], {"max_rate": 10.0}), (0, 900, [l], {})]
    )
    assert done["t0"] == pytest.approx(10.0)
    assert done["t1"] == pytest.approx(10.0)  # 90 B/s


def test_multi_link_flow_limited_by_bottleneck():
    fast = Link("fast", bandwidth=1000.0)
    slow = Link("slow", bandwidth=10.0)
    done = run_transfers([(0, 100, [fast, slow], {})])
    assert done["t0"] == pytest.approx(10.0)


def test_zero_size_transfer_completes_after_latency():
    l = Link("l", bandwidth=100.0, latency=1.0)
    done = run_transfers([(0, 0, [l], {"latency": 0.5})])
    assert done["t0"] == pytest.approx(1.5)


def test_loopback_transfer_without_links():
    done = run_transfers([(0, 12345, [], {"latency": 0.25})])
    assert done["t0"] == pytest.approx(0.25)


def test_negative_size_rejected():
    env = des.Environment()
    net = FlowNetwork(env)
    with pytest.raises(ValueError):
        net.transfer(-1, [])


def test_non_positive_max_rate_rejected():
    env = des.Environment()
    net = FlowNetwork(env)
    with pytest.raises(ValueError):
        net.transfer(1, [], max_rate=0)


def test_flow_records_achieved_bandwidth():
    env = des.Environment()
    net = FlowNetwork(env)
    l = Link("l", bandwidth=100.0)
    flow = env.run(until=net.transfer(1000, [l]))
    assert flow.achieved_bandwidth == pytest.approx(100.0)
    assert flow.elapsed == pytest.approx(10.0)


def test_completed_log_populated():
    env = des.Environment()
    net = FlowNetwork(env)
    l = Link("l", bandwidth=100.0)
    net.transfer(100, [l])
    net.transfer(200, [l])
    env.run()
    assert len(net.completed) == 2
    assert not net.active_flows


def test_utilization_full_while_transferring():
    env = des.Environment()
    net = FlowNetwork(env)
    l = Link("l", bandwidth=100.0)
    net.transfer(1000, [l])
    env.run(until=1.0)
    assert net.utilization(l) == pytest.approx(1.0)


def test_concurrency_penalty_slows_aggregate():
    """With a 10% penalty per extra flow, 2 flows share 90 B/s not 100."""
    l = Link("l", bandwidth=100.0, concurrency_penalty=0.1)
    done = run_transfers([(0, 450, [l], {}), (0, 450, [l], {})])
    assert done["t0"] == pytest.approx(10.0)
    assert done["t1"] == pytest.approx(10.0)


def test_many_flows_conserve_total_bytes():
    """n identical flows through one link finish in exactly n× single time."""
    l = Link("l", bandwidth=100.0)
    n = 16
    done = run_transfers([(0, 100, [l], {}) for _ in range(n)])
    for i in range(n):
        assert done[f"t{i}"] == pytest.approx(n * 1.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=50),
            st.floats(min_value=1, max_value=1e4),
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=40, deadline=None)
def test_makespan_bounds(arrivals):
    """Makespan is bounded below by total-bytes/capacity (after last idle)
    and above by sequential execution of everything."""
    cap = 100.0
    l = Link("l", bandwidth=cap)
    done = run_transfers([(start, size, [l], {}) for start, size in arrivals])
    makespan = max(done.values())
    total = sum(size for _, size in arrivals)
    last_arrival = max(start for start, _ in arrivals)
    assert makespan >= total / cap - 1e-6
    assert makespan <= last_arrival + total / cap + 1e-6


@given(
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=10.0, max_value=1e4),
)
@settings(max_examples=40, deadline=None)
def test_simultaneous_equal_flows_finish_together(n, size):
    l = Link("l", bandwidth=100.0)
    done = run_transfers([(0, size, [l], {}) for _ in range(n)])
    times = list(done.values())
    assert max(times) == pytest.approx(min(times), rel=1e-9)
    assert max(times) == pytest.approx(n * size / 100.0)


# ----------------------------------------------------------------------
# Regression: zero-byte flows and drained-flow sweeps
# ----------------------------------------------------------------------
def test_zero_size_transfer_with_links_completes_at_now():
    env = des.Environment()
    net = FlowNetwork(env)
    l = Link("l", bandwidth=100.0)
    seen = {}

    def proc(env):
        flow = yield net.transfer(0, [l], label="meta")
        seen["at"] = env.now
        seen["flow"] = flow

    env.process(proc(env))
    env.run()
    assert seen["at"] == 0.0
    assert seen["flow"].achieved_bandwidth is None
    assert seen["flow"] in net.completed
    assert net.active_flows == []


def test_zero_size_transfer_does_not_skew_shares():
    l = Link("l", bandwidth=100.0)
    done = run_transfers([(0, 1000, [l], {}), (1, 0, [l], {})])
    # The metadata-only transfer completes instantly and never competes
    # for bandwidth, so the bulk flow still takes exactly 10 s.
    assert done["t1"] == pytest.approx(1.0)
    assert done["t0"] == pytest.approx(10.0)


def test_zero_size_achieved_bandwidth_none_even_with_latency():
    env = des.Environment()
    net = FlowNetwork(env)
    l = Link("l", bandwidth=100.0, latency=0.5)
    seen = {}

    def proc(env):
        flow = yield net.transfer(0, [l])
        seen["at"] = env.now
        seen["flow"] = flow

    env.process(proc(env))
    env.run()
    assert seen["at"] == pytest.approx(0.5)
    # elapsed > 0 but zero bytes moved: bandwidth is undefined, not 0.0
    # (a 0.0 would poison averaged bandwidth accounting).
    assert seen["flow"].achieved_bandwidth is None


def test_zero_size_loopback_achieved_bandwidth_none():
    env = des.Environment()
    net = FlowNetwork(env)
    seen = {}

    def proc(env):
        flow = yield net.transfer(0, [], latency=0.25, max_rate=100.0)
        seen["flow"] = flow

    env.process(proc(env))
    env.run()
    assert seen["flow"].achieved_bandwidth is None


def test_drained_flow_swept_before_new_admission():
    env = des.Environment()
    net = FlowNetwork(env)
    l = Link("l", bandwidth=1.0)
    seen = {}

    def starter(env):
        net.transfer(1.0, [l], label="old")
        # Jump to one float-ulp before the old flow's completion: its
        # residue is below the finish threshold but its wake-up has not
        # fired yet.
        yield env.timeout(1.0 - 1e-13)
        net.transfer(1.0, [l], label="new")
        seen["active"] = [f.label for f in net.active_flows]
        seen["rates"] = {f.label: f.rate for f in net.active_flows}

    env.process(starter(env))
    env.run()
    # The drained flow must be finished during admission, not left to
    # claim half the link until the next wake-up.
    assert seen["active"] == ["new"]
    assert seen["rates"]["new"] == pytest.approx(1.0)
