"""Tests for the equal-split ablation allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import des
from repro.network import FlowNetwork, Link, equal_split_rates, max_min_fair_rates
from repro.network.fairshare import allocation_is_feasible


def test_equal_split_basic():
    rates = equal_split_rates([["l"], ["l"]], {"l": 100.0})
    assert rates == [50.0, 50.0]


def test_equal_split_not_work_conserving():
    """The defining difference from max-min: capacity freed by a flow
    bottlenecked elsewhere is NOT redistributed."""
    flows = [["a", "b"], ["a"], ["b"]]
    caps = {"a": 100.0, "b": 10.0}
    equal = equal_split_rates(flows, caps)
    fair = max_min_fair_rates(flows, caps)
    # Equal split: f1 gets a/2 = 50; max-min gives it 95.
    assert equal[1] == pytest.approx(50.0)
    assert fair[1] == pytest.approx(95.0)


def test_equal_split_respects_caps():
    rates = equal_split_rates([["l"]], {"l": 100.0}, flow_caps=[25.0])
    assert rates == [25.0]


def test_equal_split_validation():
    with pytest.raises(ValueError):
        equal_split_rates([["ghost"]], {"l": 1.0})
    with pytest.raises(ValueError):
        equal_split_rates([[]], {})
    with pytest.raises(ValueError):
        equal_split_rates([["l"]], {"l": 1.0}, flow_caps=[1.0, 2.0])


def test_equal_split_capless_linkless_flow_uses_cap():
    assert equal_split_rates([[]], {}, flow_caps=[7.0]) == [7.0]


@given(
    st.lists(
        st.lists(st.sampled_from("abc"), min_size=1, max_size=3),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=50)
def test_equal_split_always_feasible(flows):
    caps = {"a": 50.0, "b": 100.0, "c": 10.0}
    rates = equal_split_rates(flows, caps)
    assert allocation_is_feasible(flows, caps, rates)


@given(
    st.lists(
        st.lists(st.sampled_from("abc"), min_size=1, max_size=3),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=50)
def test_max_min_dominates_equal_split_in_total(flows):
    """Max-min is work-conserving, so its total throughput is >= equal split."""
    caps = {"a": 50.0, "b": 100.0, "c": 10.0}
    assert sum(max_min_fair_rates(flows, caps)) >= sum(
        equal_split_rates(flows, caps)
    ) - 1e-9


def test_flownetwork_accepts_custom_allocator():
    env = des.Environment()
    net = FlowNetwork(env, allocator=equal_split_rates)
    a = Link("a", bandwidth=100.0)
    b = Link("b", bandwidth=10.0)
    done = {}

    def runner(env, net):
        e1 = net.transfer(1000, [a, b], label="both")
        e2 = net.transfer(1000, [a], label="a-only")
        yield env.all_of([e1, e2])
        done["t"] = env.now

    env.process(runner(env, net))
    env.run()
    # Equal split: a-only flow runs at 50 B/s → 20 s (max-min: ~10.5 s).
    assert done["t"] == pytest.approx(100.0)  # both-flow at 10 B/s finishes last
