"""Tests for the emulation layer: effects, compute service, trials."""

import numpy as np
import pytest

from repro import des
from repro.emulation import (
    CORI_EFFECTS,
    SUMMIT_EFFECTS,
    SWARP_TRUTH,
    EmulatedComputeService,
    TrialStats,
    effects_for,
    run_trials,
)
from repro.emulation.trials import interference_factor
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.workflow import Task

SPEED = TABLE_I["cori"]["core_speed"]


# ----------------------------------------------------------------------
# Effects presets
# ----------------------------------------------------------------------
def test_effects_for_dispatch():
    assert effects_for("cori") is CORI_EFFECTS
    assert effects_for("summit") is SUMMIT_EFFECTS
    with pytest.raises(ValueError):
        effects_for("frontier")


def test_striped_is_worst_tier_on_cori():
    """Striped must carry strictly more overhead than private."""
    c = CORI_EFFECTS
    assert c.bb_striped.metadata_service_time > 0
    assert c.bb_private.metadata_service_time == 0
    assert c.bb_striped.interference_sigma > c.bb_private.interference_sigma


def test_onnode_is_most_stable():
    assert (
        SUMMIT_EFFECTS.bb_onnode.interference_sigma
        < CORI_EFFECTS.bb_private.interference_sigma
    )


def test_anomaly_band_well_formed():
    c = CORI_EFFECTS
    assert 0 <= c.striped_anomaly_low < c.striped_anomaly_high <= 1
    assert c.striped_anomaly_factor > 1


def test_truth_flops_scale_with_cori_speed():
    truth = SWARP_TRUTH["resample"]
    assert truth.flops() == pytest.approx(truth.tc1 * SPEED)


# ----------------------------------------------------------------------
# EmulatedComputeService
# ----------------------------------------------------------------------
@pytest.fixture
def emulated():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    svc = EmulatedComputeService(
        plat, ["cn0"], effects=CORI_EFFECTS, truth=SWARP_TRUTH
    )
    return env, svc


def test_truth_overrides_task_flops(emulated):
    env, svc = emulated
    # Task claims huge flops but its group truth says tc1 = 100 s.
    task = Task("r", flops=1e20, cores=1, group="resample")
    assert svc.compute_time(task, "cn0", cores=1) == pytest.approx(100.0)


def test_unknown_group_uses_task_parameters(emulated):
    env, svc = emulated
    task = Task("x", flops=SPEED, cores=1, alpha=0.0, group="mystery")
    assert svc.compute_time(task, "cn0", cores=1) == pytest.approx(1.0)


def test_true_alpha_limits_scaling(emulated):
    env, svc = emulated
    combine = Task("c", flops=0, cores=32, group="combine")
    t1 = svc.compute_time(combine, "cn0", cores=1)
    t32 = svc.compute_time(combine, "cn0", cores=32)
    # alpha = 0.9: 32 cores buy barely 10%.
    assert t32 > 0.85 * t1


def test_beyond8_degradation_applies_to_resample(emulated):
    env, svc = emulated
    resample = Task("r", flops=0, cores=1, group="resample")
    t8 = svc.compute_time(resample, "cn0", cores=8)
    t32 = svc.compute_time(resample, "cn0", cores=32)
    # Amdahl alone would make t32 < t8; degradation flattens/reverses it.
    amdahl_only = 100.0 * (0.2 + 0.8 / 32)
    assert t32 > amdahl_only


def test_requires_effects():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    with pytest.raises(ValueError):
        EmulatedComputeService(plat, ["cn0"], effects=None)


def test_compute_interference_from_busy_cores(emulated):
    env, svc = emulated
    task = Task("r", flops=0, cores=1, group="resample")

    durations = []

    def worker(env, svc):
        allocation = yield svc.acquire_cores("cn0", 1)
        duration = svc.compute_time(task, "cn0", cores=1)
        durations.append(duration)
        yield env.timeout(duration)
        allocation.release()

    for _ in range(4):
        env.process(worker(env, svc))
    env.run()
    # Each of the 4 concurrent workers sees 3 other busy cores.
    expected = 100.0 * (1 + CORI_EFFECTS.compute_interference * 3)
    assert durations == pytest.approx([expected] * 4)


# ----------------------------------------------------------------------
# Trials
# ----------------------------------------------------------------------
def test_run_trials_reproducible():
    values = run_trials(lambda seed: float(seed) ** 2, n_trials=5, base_seed=3)
    again = run_trials(lambda seed: float(seed) ** 2, n_trials=5, base_seed=3)
    assert values.values == again.values


def test_run_trials_distinct_seeds():
    stats = run_trials(lambda seed: float(seed), n_trials=15)
    assert len(set(stats.values)) == 15


def test_run_trials_validation():
    with pytest.raises(ValueError):
        run_trials(lambda s: 1.0, n_trials=0)


def test_trial_stats_moments():
    stats = TrialStats(values=(1.0, 2.0, 3.0))
    assert stats.n == 3
    assert stats.mean == pytest.approx(2.0)
    assert stats.std == pytest.approx(1.0)
    assert stats.min == 1.0
    assert stats.max == 3.0
    assert stats.cv == pytest.approx(0.5)
    assert stats.spread == pytest.approx(1.0)


def test_trial_stats_single_value():
    stats = TrialStats(values=(5.0,))
    assert stats.std == 0.0
    assert stats.cv == 0.0


def test_interference_factor_zero_sigma_is_one():
    rng = np.random.default_rng(0)
    assert interference_factor(rng, 0.0) == 1.0


def test_interference_factor_median_near_one():
    rng = np.random.default_rng(0)
    draws = [interference_factor(rng, 0.15) for _ in range(2000)]
    assert np.median(draws) == pytest.approx(1.0, abs=0.02)
    assert all(d > 0 for d in draws)
