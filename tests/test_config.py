"""Tests for the v2 configuration surface (``repro.Config``).

Covers the single coercion path (:meth:`Config.from_any`), the doc
round-trip serialized into v2 manifests, the deprecation shims on the
old keyword-argument surface, and — critically — that introducing the
v2 surface did not shift the sweep cache's content addresses for
unchanged points.
"""

import json
import warnings

import pytest

import repro
from repro import Config
from repro.network import DEFAULT_ALLOCATOR
from repro.platform.presets import cori_spec
from repro.simulator import SimulatorConfig
from repro.storage import BBMode
from repro.workflow.swarp import make_swarp


@pytest.fixture(scope="module")
def platform():
    return cori_spec(n_compute=1, n_bb_nodes=1)


@pytest.fixture(scope="module")
def workflow():
    return make_swarp()


# ----------------------------------------------------------------------
# Coercion: Config.from_any
# ----------------------------------------------------------------------
def test_top_level_reexport():
    from repro.config import Config as Underlying

    assert repro.Config is Underlying


def test_from_any_none_gives_defaults():
    cfg = Config.from_any(None)
    assert cfg == Config()
    assert cfg.bb_mode is BBMode.STRIPED
    assert cfg.network_allocator == DEFAULT_ALLOCATOR
    assert not cfg.wants_observer()


def test_from_any_config_passes_through():
    cfg = Config(input_fraction=0.5)
    assert Config.from_any(cfg) is cfg


def test_from_any_lifts_simulator_config():
    sim = SimulatorConfig(bb_mode=BBMode.PRIVATE, input_fraction=0.25)
    cfg = Config.from_any(sim)
    assert cfg.bb_mode is BBMode.PRIVATE
    assert cfg.input_fraction == 0.25
    assert not cfg.wants_observer()  # observability stays off
    assert cfg.to_simulator_config() == sim


def test_from_any_mapping_mixes_model_and_obs_keys():
    cfg = Config.from_any(
        {"bb_mode": "private", "monitors": True, "metrics": ["network"]}
    )
    assert cfg.bb_mode is BBMode.PRIVATE
    assert cfg.monitors is True
    assert cfg.metrics == ("network",)
    assert cfg.wants_observer()


def test_from_any_rejects_unknown_keys():
    with pytest.raises(TypeError, match="unknown config keys: allocator"):
        Config.from_any({"allocator": "vectorized"})


def test_from_any_rejects_unsupported_types():
    with pytest.raises(TypeError, match="cannot build a Config"):
        Config.from_any(42)


def test_from_any_reads_json_file(tmp_path):
    path = tmp_path / "run.json"
    path.write_text(json.dumps({"network_allocator": "vectorized"}))
    cfg = Config.from_any(path)
    assert cfg.network_allocator == "vectorized"
    # str paths work too (the CLI hands them over untouched).
    assert Config.from_any(str(path)) == cfg


def test_from_any_rejects_non_object_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2]")
    with pytest.raises(ValueError, match="must hold a JSON object"):
        Config.from_any(path)


def test_config_coerces_bb_mode_string_silently():
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning fails the test
        cfg = Config(bb_mode="private")
    assert cfg.bb_mode is BBMode.PRIVATE


def test_config_rejects_unknown_queue_policy():
    with pytest.raises(Exception, match="not-a-policy"):
        Config(queue_policy="not-a-policy")


def test_replace_returns_modified_copy():
    base = Config()
    changed = base.replace(network_allocator="vectorized")
    assert changed.network_allocator == "vectorized"
    assert base.network_allocator == DEFAULT_ALLOCATOR
    assert changed is not base


# ----------------------------------------------------------------------
# Doc round-trip (the manifest v2 config form)
# ----------------------------------------------------------------------
def test_to_doc_from_doc_round_trip():
    cfg = Config(
        bb_mode=BBMode.PRIVATE,
        input_fraction=0.5,
        network_allocator="vectorized",
        metrics=("network", "des"),
        monitors=True,
        obs_dir="/tmp/obs",
    )
    doc = cfg.to_doc()
    assert doc["schema"] == "repro.api.config/2"
    assert doc["bb_mode"] == "private"          # enum serialized by value
    assert doc["metrics"] == ["network", "des"]  # tuple becomes a list
    json.dumps(doc)  # JSON-ready as promised
    assert Config.from_doc(doc) == cfg


def test_from_doc_reads_v1_model_only_shape():
    # The v1 manifest config: flat SimulatorConfig fields, no schema tag.
    v1 = {
        "bb_mode": "striped",
        "input_fraction": 1.0,
        "intermediate_fraction": 1.0,
        "output_fraction": 0.0,
        "use_amdahl_alpha": False,
        "network_allocator": "max-min",
        "queue_policy": "fifo",
    }
    cfg = Config.from_doc(v1)
    assert cfg.to_simulator_config() == SimulatorConfig()
    assert not cfg.wants_observer()


# ----------------------------------------------------------------------
# Observer construction
# ----------------------------------------------------------------------
def test_make_observer_none_when_nothing_requested():
    assert Config().make_observer() is None


def test_make_observer_builds_observer_with_bus(tmp_path):
    cfg = Config(metrics=("network",), live_dir=tmp_path / "live")
    observer = cfg.make_observer()
    assert observer is not None
    assert observer.bus is not None
    plain = Config(observe=True).make_observer()
    assert plain is not None and plain.bus is None


# ----------------------------------------------------------------------
# simulate() integration and deprecation shims
# ----------------------------------------------------------------------
def test_simulate_accepts_config_v2(platform, workflow):
    result = repro.simulate(
        platform, workflow, config=Config(network_allocator="vectorized")
    )
    assert result.config.network_allocator == "vectorized"
    assert result.makespan > 0


def test_simulate_config_observability_switches_imply_observer(
    platform, workflow
):
    result = repro.simulate(platform, workflow, config=Config(observe=True))
    assert result.telemetry is not None


def test_simulate_allocator_kwarg_deprecated(platform, workflow):
    with pytest.warns(DeprecationWarning, match="allocator"):
        result = repro.simulate(platform, workflow, allocator="incremental")
    assert result.config.network_allocator == "incremental"


def test_simulate_policy_kwarg_deprecated(platform, workflow):
    with pytest.warns(DeprecationWarning, match="policy"):
        result = repro.simulate(platform, workflow, policy="fifo")
    assert result.config.queue_policy == "fifo"


def test_simulator_config_bb_mode_string_deprecated():
    with pytest.warns(DeprecationWarning, match="bb_mode"):
        cfg = SimulatorConfig(bb_mode="private")
    assert cfg.bb_mode is BBMode.PRIVATE


def test_simulator_accepts_config_v2(platform, workflow):
    from repro.simulator import Simulator

    sim = Simulator(platform, workflow, Config(bb_mode=BBMode.PRIVATE))
    assert sim.config.bb_mode is BBMode.PRIVATE
    assert isinstance(sim.config, SimulatorConfig)


# ----------------------------------------------------------------------
# Manifest schemas
# ----------------------------------------------------------------------
def test_manifest_with_config_uses_v2_schema():
    from repro.obs import (
        MANIFEST_SCHEMA_V2,
        build_manifest,
        config_from_manifest,
        config_v2_from_manifest,
        validate_manifest,
    )

    cfg = Config(bb_mode=BBMode.PRIVATE, monitors=True)
    doc = build_manifest(config=cfg)
    assert doc["schema"] == MANIFEST_SCHEMA_V2
    assert doc["config"]["schema"] == "repro.api.config/2"
    assert validate_manifest(doc) == []
    assert config_from_manifest(doc) == cfg.to_simulator_config()
    assert config_v2_from_manifest(doc) == cfg


def test_manifest_v1_layout_still_reads():
    from repro.obs import config_from_manifest, config_v2_from_manifest

    v1_doc = {
        "schema": "repro.obs.manifest/1",
        "simulator_version": "1.0.0",
        "config": {
            "bb_mode": "private",
            "input_fraction": 0.5,
            "intermediate_fraction": 1.0,
            "output_fraction": 0.0,
            "use_amdahl_alpha": False,
            "network_allocator": "max-min",
            "queue_policy": "fifo",
        },
    }
    sim = config_from_manifest(v1_doc)
    assert sim == SimulatorConfig(bb_mode=BBMode.PRIVATE, input_fraction=0.5)
    cfg = config_v2_from_manifest(v1_doc)
    assert cfg.bb_mode is BBMode.PRIVATE and not cfg.wants_observer()


def test_configless_manifest_keeps_v1_schema():
    from repro.obs import MANIFEST_SCHEMA, build_manifest

    assert build_manifest()["schema"] == MANIFEST_SCHEMA


# ----------------------------------------------------------------------
# Cache-key neutrality (warm caches survive the v2 migration)
# ----------------------------------------------------------------------
def test_fig13_cache_key_unchanged_by_config_v2():
    """The content address of a historical fig13 point is pinned.

    A warm sweep cache written before the Config v2 migration must stay
    valid: the key document still carries the v1 manifest schema (no
    config section) and hashes to the exact pre-migration digest.
    """
    from repro.experiments.fig13 import sweep_spec
    from repro.sweep.cache import point_key, point_key_doc

    spec = sweep_spec(quick=False)  # default-allocator spec
    params = {"system": "cori", "fraction": 0.5, "n_chromosomes": 6}
    doc = point_key_doc(spec, params)
    assert doc == {
        "cache_schema": "repro.sweep.cache/1",
        "params": {"fraction": 0.5, "n_chromosomes": 6, "system": "cori"},
        "schema": "repro.obs.manifest/1",
        "simulator_version": "1.0.0",
        "sweep": {
            "func": "repro.experiments.fig13:compute_point",
            "sweep_id": "fig13",
            "version": 1,
        },
    }
    assert point_key(spec, params) == (
        "1f3bec07c6dc1863df36d2f0c05312f9faa7a06dbd00b6d94640e40c5b55fc84"
    )


def test_non_default_allocator_changes_the_cache_key():
    from repro.experiments.fig13 import sweep_spec
    from repro.sweep.cache import point_key

    default_spec = sweep_spec(quick=False)
    vec_spec = sweep_spec(
        quick=False, config=Config(network_allocator="vectorized")
    )
    base = {"system": "cori", "fraction": 0.5, "n_chromosomes": 6}
    assert all(
        "network_allocator" not in params for params in default_spec.points
    )
    assert all(
        params["network_allocator"] == "vectorized"
        for params in vec_spec.points
    )
    assert point_key(default_spec, base) != point_key(
        vec_spec, {**base, "network_allocator": "vectorized"}
    )
