"""Integration tests: the scenario builders reproduce the paper's shapes.

Each test asserts a qualitative finding of the paper (orderings,
monotone trends, plateaus) rather than absolute numbers — the repo's
contract is that the *shapes* hold.
"""

import pytest

from repro.scenarios import run_genomes, run_swarp
from repro.storage import BBMode


# ----------------------------------------------------------------------
# Basic contract
# ----------------------------------------------------------------------
def test_run_swarp_returns_complete_result():
    r = run_swarp(n_pipelines=2)
    assert r.makespan > 0
    assert len(r.trace.records) == 5  # stage_in + 2×(resample+combine)
    assert r.workflow.name.startswith("swarp")


def test_run_swarp_validation():
    with pytest.raises(ValueError):
        run_swarp(system="frontier")
    with pytest.raises(ValueError):
        run_swarp(input_fraction=1.5)


def test_run_genomes_validation():
    with pytest.raises(ValueError):
        run_genomes(system="frontier")
    with pytest.raises(ValueError):
        run_genomes(n_compute=0)


def test_emulated_run_is_seed_reproducible():
    a = run_swarp(emulated=True, seed=7).makespan
    b = run_swarp(emulated=True, seed=7).makespan
    assert a == b


def test_emulated_seeds_differ():
    a = run_swarp(emulated=True, seed=1, bb_mode=BBMode.STRIPED).makespan
    b = run_swarp(emulated=True, seed=2, bb_mode=BBMode.STRIPED).makespan
    assert a != b


def test_pure_simulation_is_deterministic():
    a = run_swarp(emulated=False).makespan
    b = run_swarp(emulated=False).makespan
    assert a == b


# ----------------------------------------------------------------------
# Figure 4 shapes: stage-in
# ----------------------------------------------------------------------
def stage_in(system, fraction, **kw):
    r = run_swarp(
        system=system,
        input_fraction=fraction,
        emulated=True,
        seed=None,
        **kw,
    )
    return r.trace.task_record("stage_in").duration


def test_stage_in_grows_with_fraction():
    times = [stage_in("cori", f) for f in (0.0, 0.5, 1.0)]
    assert times[0] < times[1] < times[2]


def test_stage_in_onnode_beats_shared():
    """Paper: Summit outperforms Cori's shared BB by up to ~5×."""
    cori = stage_in("cori", 1.0, bb_mode=BBMode.PRIVATE)
    summit = stage_in("summit", 1.0)
    assert cori / summit > 3.0


def test_stage_in_striped_worst():
    private = stage_in("cori", 1.0, bb_mode=BBMode.PRIVATE)
    striped = stage_in("cori", 1.0, bb_mode=BBMode.STRIPED)
    assert striped > private


def test_striped_anomaly_at_75_percent():
    """Paper: reproducible degradation when 75% of inputs are staged."""
    t50 = stage_in("cori", 0.5, bb_mode=BBMode.STRIPED)
    t75 = stage_in("cori", 0.75, bb_mode=BBMode.STRIPED)
    t100 = stage_in("cori", 1.0, bb_mode=BBMode.STRIPED)
    linear_estimate = t50 * 1.5
    assert t75 > 1.3 * linear_estimate  # the bump
    assert t100 < t75  # improves again past the band


# ----------------------------------------------------------------------
# Figure 5 shapes: task times across tiers
# ----------------------------------------------------------------------
def task_time(group, system, fraction, inter_bb, mode=BBMode.PRIVATE):
    kw = {} if system == "summit" else {"bb_mode": mode}
    r = run_swarp(
        system=system,
        input_fraction=fraction,
        intermediates_in_bb=inter_bb,
        include_stage_in=False,
        emulated=True,
        seed=None,
        **kw,
    )
    return r.mean_duration(group)


def test_private_resample_improves_with_staged_inputs():
    t0 = task_time("resample", "cori", 0.0, True)
    t1 = task_time("resample", "cori", 1.0, True)
    assert t1 < t0


def test_bb_intermediates_beat_pfs():
    """Paper: writing Resample output to the BB beats the PFS."""
    bb = task_time("resample", "cori", 1.0, True)
    pfs = task_time("resample", "cori", 1.0, False)
    assert bb < pfs


def test_private_combine_nearly_constant():
    """Paper: Combine reads from one layer, so it is flat in the sweep."""
    times = [task_time("combine", "cori", f, True) for f in (0.0, 0.5, 1.0)]
    assert max(times) / min(times) < 1.05


def test_striped_slower_than_private():
    private = task_time("resample", "cori", 1.0, True, BBMode.PRIVATE)
    striped = task_time("resample", "cori", 1.0, True, BBMode.STRIPED)
    assert striped > 1.1 * private


def test_onnode_fastest_configuration():
    onnode = task_time("resample", "summit", 1.0, True)
    private = task_time("resample", "cori", 1.0, True)
    assert onnode < private


# ----------------------------------------------------------------------
# Figure 6 shapes: cores per task
# ----------------------------------------------------------------------
def resample_at_cores(system, cores):
    kw = {} if system == "summit" else {"bb_mode": BBMode.PRIVATE}
    r = run_swarp(
        system=system,
        input_fraction=1.0,
        cores_per_task=cores,
        include_stage_in=False,
        emulated=True,
        seed=None,
        **kw,
    )
    return r.mean_duration("resample")


def test_resample_parallelism_plateaus_on_shared():
    """Paper: benefit up to ~8 cores, then slight degradation."""
    t1 = resample_at_cores("cori", 1)
    t8 = resample_at_cores("cori", 8)
    t32 = resample_at_cores("cori", 32)
    assert t8 < t1 / 2           # real speedup up to 8
    assert t32 > 0.9 * t8        # no meaningful gain past 8


def test_combine_does_not_benefit_from_cores():
    def combine_at(cores):
        r = run_swarp(
            system="cori",
            bb_mode=BBMode.PRIVATE,
            input_fraction=1.0,
            cores_per_task=cores,
            include_stage_in=False,
            emulated=True,
            seed=None,
        )
        return r.mean_duration("combine")

    assert combine_at(32) > 0.85 * combine_at(1)


# ----------------------------------------------------------------------
# Figure 7 shapes: concurrent pipelines
# ----------------------------------------------------------------------
def resample_at_pipelines(system, n):
    kw = {} if system == "summit" else {"bb_mode": BBMode.PRIVATE}
    r = run_swarp(
        system=system,
        input_fraction=1.0,
        outputs_in_bb=True,
        n_pipelines=n,
        cores_per_task=1,
        include_stage_in=False,
        emulated=True,
        seed=None,
        **kw,
    )
    return r.mean_duration("resample")


def test_cori_pipelines_contend():
    """Paper: up to ~3× slowdown with 32 concurrent pipelines."""
    slowdown = resample_at_pipelines("cori", 32) / resample_at_pipelines("cori", 1)
    assert slowdown > 1.5


def test_summit_pipelines_nearly_flat():
    """Paper: degradation nearly negligible for Resample on-node."""
    slowdown = resample_at_pipelines("summit", 32) / resample_at_pipelines(
        "summit", 1
    )
    assert slowdown < 1.3


def test_summit_flatter_than_cori():
    cori = resample_at_pipelines("cori", 32) / resample_at_pipelines("cori", 1)
    summit = resample_at_pipelines("summit", 32) / resample_at_pipelines(
        "summit", 1
    )
    assert summit < cori


# ----------------------------------------------------------------------
# 1000Genomes case study shapes (Figures 13/14)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def genomes_curves():
    fractions = (0.0, 0.4, 0.8, 1.0)
    return {
        system: {
            f: run_genomes(
                system=system, input_fraction=f, n_chromosomes=4, n_compute=4
            ).makespan
            for f in fractions
        }
        for system in ("cori", "summit")
    }


def test_genomes_makespan_falls_with_staging(genomes_curves):
    for system in ("cori", "summit"):
        curve = genomes_curves[system]
        assert curve[0.0] > curve[0.4] > curve[0.8] >= curve[1.0] * 0.999


def test_genomes_summit_beats_cori(genomes_curves):
    for f in (0.4, 0.8, 1.0):
        assert genomes_curves["summit"][f] < genomes_curves["cori"][f]


def test_genomes_cori_plateaus_before_summit(genomes_curves):
    """Paper: Cori saturates ~80% staged; Summit keeps improving."""
    cori_tail = genomes_curves["cori"][0.8] - genomes_curves["cori"][1.0]
    summit_tail = genomes_curves["summit"][0.8] - genomes_curves["summit"][1.0]
    assert summit_tail > cori_tail


# ----------------------------------------------------------------------
# The paper's conjecture: more BB nodes lift Cori's saturation
# ----------------------------------------------------------------------
def test_more_bb_nodes_lift_cori_saturation():
    """Paper (Section IV-C): "a striped BB allocation would improve the
    performance in this case by using more BB nodes and, therefore,
    alleviating the pressure on the bandwidth"."""
    one = run_genomes(
        system="cori", input_fraction=1.0, n_chromosomes=4, n_compute=4,
        n_bb_nodes=1,
    ).makespan
    four = run_genomes(
        system="cori", input_fraction=1.0, n_chromosomes=4, n_compute=4,
        n_bb_nodes=4,
    ).makespan
    assert four < one
