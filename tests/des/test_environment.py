"""Tests for the DES environment: clock, scheduling, and run() semantics."""

import pytest

from repro import des
from repro.des.environment import EmptySchedule


def test_initial_time_defaults_to_zero():
    assert des.Environment().now == 0.0


def test_initial_time_can_be_set():
    assert des.Environment(initial_time=42.5).now == 42.5


def test_timeout_advances_clock():
    env = des.Environment()
    env.timeout(3.0)
    env.run()
    assert env.now == 3.0


def test_timeout_negative_delay_rejected():
    env = des.Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_zero_delay_allowed():
    env = des.Environment()
    done = []

    def proc(env):
        yield env.timeout(0.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_run_until_time_stops_clock_exactly():
    env = des.Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_time_excludes_events_at_boundary():
    """SimPy semantics: events at exactly `until` are not executed."""
    env = des.Environment()
    fired = []

    def proc(env):
        yield env.timeout(5.0)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=5.0)
    assert fired == []
    assert env.now == 5.0


def test_run_until_past_time_raises():
    env = des.Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = des.Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "payload"

    p = env.process(proc(env))
    assert env.run(until=p) == "payload"
    assert env.now == 2.0


def test_run_until_already_processed_event():
    env = des.Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 7

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == 7


def test_run_until_event_that_never_fires_raises():
    env = des.Environment()
    orphan = env.event()
    with pytest.raises(des.SimulationError):
        env.run(until=orphan)


def test_run_until_failing_process_propagates():
    env = des.Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("kaput")

    p = env.process(bad(env))
    with pytest.raises(RuntimeError, match="kaput"):
        env.run(until=p)


def test_run_drains_queue_when_no_until():
    env = des.Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    env.run()
    assert env.now == 2.0
    assert len(env) == 0


def test_run_until_time_with_empty_queue_advances_clock():
    env = des.Environment()
    env.run(until=100.0)
    assert env.now == 100.0


def test_step_on_empty_schedule_raises():
    env = des.Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time():
    env = des.Environment()
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_peek_empty_queue_is_inf():
    assert des.Environment().peek() == float("inf")


def test_fifo_ordering_of_simultaneous_events():
    env = des.Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_schedule_negative_delay_rejected():
    env = des.Environment()
    with pytest.raises(ValueError):
        env.schedule(env.event(), delay=-0.5)


def test_unhandled_process_failure_crashes_run():
    env = des.Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(bad(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_handled_process_failure_does_not_crash():
    env = des.Environment()
    caught = []

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def watcher(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(watcher(env))
    env.run()
    assert caught == ["inner"]


def test_clock_is_monotonic_across_many_events():
    env = des.Environment()
    times = []

    def proc(env, delay):
        yield env.timeout(delay)
        times.append(env.now)

    for d in (5, 1, 3, 2, 4, 1, 5, 0):
        env.process(proc(env, d))
    env.run()
    assert times == sorted(times)
