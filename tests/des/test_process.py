"""Tests for Process: lifecycle, waiting, interrupts, and error handling."""

import pytest

from repro import des


def test_process_return_value_is_event_value():
    env = des.Environment()

    def proc(env):
        yield env.timeout(1)
        return 99

    p = env.process(proc(env))
    env.run()
    assert p.value == 99


def test_process_without_return_yields_none():
    env = des.Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert p.value is None


def test_process_is_alive_until_done():
    env = des.Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_non_generator_rejected():
    env = des.Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_receives_timeout_value():
    env = des.Environment()
    got = []

    def proc(env):
        v = yield env.timeout(1, value="tick")
        got.append(v)

    env.process(proc(env))
    env.run()
    assert got == ["tick"]


def test_process_waits_on_other_process():
    env = des.Environment()
    order = []

    def child(env):
        yield env.timeout(2)
        order.append("child")
        return "c"

    def parent(env):
        v = yield env.process(child(env))
        order.append(f"parent got {v}")

    env.process(parent(env))
    env.run()
    assert order == ["child", "parent got c"]


def test_process_waits_on_already_finished_process():
    env = des.Environment()
    got = []

    def child(env):
        yield env.timeout(1)
        return 5

    def parent(env, c):
        yield env.timeout(10)
        v = yield c  # c finished long ago
        got.append((env.now, v))

    c = env.process(child(env))
    env.process(parent(env, c))
    env.run()
    assert got == [(10, 5)]


def test_yielding_non_event_fails_process():
    env = des.Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(des.SimulationError, match="non-event"):
        env.run()


def test_interrupt_delivers_cause():
    env = des.Environment()
    seen = []

    def victim(env):
        try:
            yield env.timeout(100)
        except des.Interrupt as i:
            seen.append((env.now, i.cause))

    def attacker(env, v):
        yield env.timeout(3)
        v.interrupt("reason")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert seen == [(3, "reason")]


def test_interrupted_process_can_wait_again():
    env = des.Environment()
    seen = []

    def victim(env):
        try:
            yield env.timeout(100)
        except des.Interrupt:
            yield env.timeout(2)
            seen.append(env.now)

    def attacker(env, v):
        yield env.timeout(1)
        v.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert seen == [3]


def test_uncaught_interrupt_fails_process():
    env = des.Environment()

    def victim(env):
        yield env.timeout(100)

    def attacker(env, v):
        yield env.timeout(1)
        v.interrupt("bam")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    with pytest.raises(des.Interrupt):
        env.run()


def test_interrupting_dead_process_raises():
    env = des.Environment()

    def quick(env):
        yield env.timeout(1)

    def late(env, q):
        yield env.timeout(5)
        q.interrupt()

    q = env.process(quick(env))
    env.process(late(env, q))
    with pytest.raises(des.SimulationError):
        env.run()


def test_process_cannot_interrupt_itself():
    env = des.Environment()

    def selfish(env):
        yield env.timeout(0)
        env.active_process.interrupt()

    env.process(selfish(env))
    with pytest.raises(des.SimulationError):
        env.run()


def test_active_process_visible_during_execution():
    env = des.Environment()
    captured = []

    def proc(env):
        captured.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert captured == [p]
    assert env.active_process is None


def test_target_tracks_waited_event():
    env = des.Environment()

    def proc(env):
        yield env.timeout(10)

    p = env.process(proc(env))
    env.run(until=1)
    assert p.target is not None
    env.run()
    assert p.target is None


def test_exception_in_process_carries_to_waiter():
    env = des.Environment()
    caught = []

    def bad(env):
        yield env.timeout(1)
        raise KeyError("k")

    def waiter(env):
        try:
            yield env.process(bad(env))
        except KeyError as exc:
            caught.append(exc.args[0])

    env.process(waiter(env))
    env.run()
    assert caught == ["k"]


def test_many_sequential_processes():
    """A chain of 100 processes each waiting on the previous one."""
    env = des.Environment()

    def link(env, prev):
        if prev is not None:
            yield prev
        yield env.timeout(1)
        return (0 if prev is None else prev.value) + 1

    p = None
    for _ in range(100):
        p = env.process(link(env, p))
    env.run()
    assert p.value == 100
    assert env.now == 100
