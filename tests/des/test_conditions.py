"""Tests for AllOf / AnyOf composite events."""

import pytest

from repro import des
from repro.des.conditions import ConditionValue


def test_allof_waits_for_all():
    env = des.Environment()
    events = [env.timeout(d, value=d) for d in (3, 1, 2)]
    result = env.run(until=env.all_of(events))
    assert env.now == 3
    assert result.values() == [3, 1, 2]  # request order preserved


def test_allof_empty_is_immediate():
    env = des.Environment()
    cond = env.all_of([])
    result = env.run(until=cond)
    assert len(result) == 0
    assert env.now == 0


def test_anyof_fires_on_first():
    env = des.Environment()
    events = [env.timeout(d, value=d) for d in (5, 2, 9)]
    result = env.run(until=env.any_of(events))
    assert env.now == 2
    assert result.values() == [2]


def test_anyof_empty_rejected():
    env = des.Environment()
    with pytest.raises(ValueError):
        env.any_of([])


def test_allof_with_already_triggered_events():
    env = des.Environment()
    a = env.event().succeed("a")
    b = env.timeout(1, "b")
    result = env.run(until=env.all_of([a, b]))
    assert result.values() == ["a", "b"]


def test_anyof_with_already_processed_event():
    env = des.Environment()
    a = env.event().succeed("a")
    env.run()
    assert a.processed
    b = env.timeout(10, "b")
    result = env.run(until=env.any_of([a, b]))
    assert env.now == 0
    assert result.values() == ["a"]


def test_condition_failure_propagates():
    env = des.Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("nope")

    def waiter(env):
        yield env.all_of([env.process(bad(env)), env.timeout(10)])

    w = env.process(waiter(env))
    with pytest.raises(RuntimeError, match="nope"):
        env.run(until=w)


def test_anyof_defuses_late_failure():
    """A failure arriving after the condition fired must not crash run()."""
    env = des.Environment()

    def bad(env):
        yield env.timeout(5)
        raise RuntimeError("late")

    def waiter(env):
        result = yield env.any_of([env.timeout(1, "fast"), env.process(bad(env))])
        return result.values()

    w = env.process(waiter(env))
    env.run()
    assert w.value == ["fast"]


def test_mixing_environments_rejected():
    env1, env2 = des.Environment(), des.Environment()
    t1 = env1.timeout(1)
    t2 = env2.timeout(1)
    with pytest.raises(des.SimulationError):
        des.AllOf(env1, [t1, t2])


def test_condition_value_mapping_interface():
    env = des.Environment()
    a = env.timeout(1, "va")
    b = env.timeout(2, "vb")
    result = env.run(until=a & b)
    assert isinstance(result, ConditionValue)
    assert result[a] == "va"
    assert result[b] == "vb"
    assert a in result and b in result
    assert result.todict() == {a: "va", b: "vb"}
    assert result == {a: "va", b: "vb"}
    assert list(result) == [a, b]


def test_condition_value_unknown_key_raises():
    env = des.Environment()
    a = env.timeout(1)
    other = env.timeout(1)
    result = env.run(until=env.all_of([a]))
    with pytest.raises(KeyError):
        result[other]


def test_nested_conditions():
    env = des.Environment()
    a = env.timeout(1, "a")
    b = env.timeout(2, "b")
    c = env.timeout(3, "c")
    nested = (a & b) | c
    env.run(until=nested)
    assert env.now == 2


def test_allof_many_events():
    env = des.Environment()
    events = [env.timeout(i % 7, value=i) for i in range(50)]
    result = env.run(until=env.all_of(events))
    assert result.values() == list(range(50))
    assert env.now == 6
