"""Property-based tests for the DES kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import des


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=40))
def test_clock_ends_at_max_timeout(delays):
    env = des.Environment()
    for d in delays:
        env.timeout(d)
    env.run()
    assert env.now == (max(delays) if delays else 0.0)


@given(
    st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_events_processed_in_time_order(delays):
    env = des.Environment()
    seen = []

    def proc(env, d):
        yield env.timeout(d)
        seen.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=40))
@settings(max_examples=30)
def test_resource_never_exceeds_capacity(capacity, n_users):
    env = des.Environment()
    res = des.Resource(env, capacity=capacity)
    max_in_use = 0
    in_use = 0

    def user(env, res):
        nonlocal max_in_use, in_use
        with res.request() as req:
            yield req
            in_use += 1
            max_in_use = max(max_in_use, in_use)
            yield env.timeout(1)
            in_use -= 1

    for _ in range(n_users):
        env.process(user(env, res))
    env.run()
    assert max_in_use <= capacity
    assert res.count == 0


@given(
    st.lists(
        st.tuples(st.booleans(), st.floats(min_value=0.1, max_value=10)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=30)
def test_container_level_stays_in_bounds(ops):
    """Interleaved puts/gets can never drive the level outside [0, cap]."""
    env = des.Environment()
    cap = 50.0
    c = des.Container(env, capacity=cap, init=cap / 2)
    levels = []

    def worker(env, c, is_put, amount):
        if is_put:
            yield c.put(amount)
        else:
            yield c.get(amount)
        levels.append(c.level)

    for is_put, amount in ops:
        env.process(worker(env, c, is_put, amount))
    env.run()
    assert all(0 <= lvl <= cap + 1e-9 for lvl in levels)
    assert 0 <= c.level <= cap + 1e-9


@given(st.lists(st.integers(), min_size=0, max_size=25))
@settings(max_examples=30)
def test_store_preserves_items_exactly(items):
    """Everything put into a store comes out, in FIFO order."""
    env = des.Environment()
    s = des.Store(env)
    got = []

    def producer(env, s):
        for item in items:
            yield s.put(item)

    def consumer(env, s):
        for _ in range(len(items)):
            got.append((yield s.get()))

    env.process(producer(env, s))
    env.process(consumer(env, s))
    env.run()
    assert got == items


@given(st.integers(min_value=0, max_value=60))
@settings(max_examples=25)
def test_allof_value_order_matches_request_order(n):
    env = des.Environment()
    # Deliberately scramble completion order via (i * 7) % 11 delays.
    events = [env.timeout((i * 7) % 11, value=i) for i in range(n)]
    result = env.run(until=env.all_of(events))
    assert result.values() == list(range(n))
