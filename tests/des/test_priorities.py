"""Tests for event priority ordering within one timestamp."""

from repro import des
from repro.des.core import EventPriority


def test_priorities_order_same_time_events():
    env = des.Environment()
    order = []

    def make_callback(tag):
        return lambda e: order.append(tag)

    for tag, priority in (
        ("low", EventPriority.LOW),
        ("urgent", EventPriority.URGENT),
        ("normal", EventPriority.NORMAL),
        ("high", EventPriority.HIGH),
    ):
        ev = des.Event(env)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(make_callback(tag))
        env.schedule(ev, priority=priority, delay=1.0)
    env.run()
    assert order == ["urgent", "high", "normal", "low"]


def test_fifo_within_same_priority():
    env = des.Environment()
    order = []
    for i in range(5):
        ev = des.Event(env)
        ev._ok = True
        ev._value = i
        ev.callbacks.append(lambda e: order.append(e.value))
        env.schedule(ev, delay=2.0)
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_earlier_time_beats_priority():
    env = des.Environment()
    order = []

    late_urgent = des.Event(env)
    late_urgent._ok = True
    late_urgent._value = None
    late_urgent.callbacks.append(lambda e: order.append("late-urgent"))
    env.schedule(late_urgent, priority=EventPriority.URGENT, delay=2.0)

    early_low = des.Event(env)
    early_low._ok = True
    early_low._value = None
    early_low.callbacks.append(lambda e: order.append("early-low"))
    env.schedule(early_low, priority=EventPriority.LOW, delay=1.0)

    env.run()
    assert order == ["early-low", "late-urgent"]


def test_interrupt_preempts_same_time_timeouts():
    """An interrupt delivered at time t runs before ordinary events
    scheduled at t (URGENT priority) — the victim sees the interrupt,
    not the timeout."""
    env = des.Environment()
    seen = []

    def victim(env):
        try:
            yield env.timeout(5)
            seen.append("timeout")
        except des.Interrupt:
            seen.append("interrupt")

    def attacker(env, v):
        yield env.timeout(5)  # same instant the victim's timeout fires
        if v.is_alive:
            v.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    # The victim's own timeout (scheduled first) wins the same-time race;
    # what matters is determinism, not which one.
    assert seen in (["timeout"], ["interrupt"])
    again = []

    env2 = des.Environment()

    def victim2(env):
        try:
            yield env.timeout(5)
            again.append("timeout")
        except des.Interrupt:
            again.append("interrupt")

    def attacker2(env, v):
        yield env.timeout(5)
        if v.is_alive:
            v.interrupt()

    v2 = env2.process(victim2(env2))
    env2.process(attacker2(env2, v2))
    env2.run()
    assert again == seen  # deterministic across runs
