"""Tests for Event state transitions and composition operators."""

import pytest

from repro import des


def test_fresh_event_is_pending():
    env = des.Environment()
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed


def test_value_before_trigger_raises():
    env = des.Environment()
    ev = env.event()
    with pytest.raises(des.SimulationError):
        _ = ev.value
    with pytest.raises(des.SimulationError):
        _ = ev.ok


def test_succeed_sets_value():
    env = des.Environment()
    ev = env.event().succeed(123)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 123


def test_succeed_with_none_still_counts_as_triggered():
    env = des.Environment()
    ev = env.event().succeed()
    assert ev.triggered
    assert ev.value is None


def test_double_succeed_raises():
    env = des.Environment()
    ev = env.event().succeed()
    with pytest.raises(des.SimulationError):
        ev.succeed()


def test_fail_requires_exception_instance():
    env = des.Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_fail_sets_exception_as_value():
    env = des.Environment()
    exc = RuntimeError("x")
    ev = env.event().fail(exc)
    ev.defuse()
    assert ev.triggered
    assert not ev.ok
    assert ev.value is exc
    env.run()


def test_undefused_failure_propagates_from_run():
    env = des.Environment()
    env.event().fail(RuntimeError("loud"))
    with pytest.raises(RuntimeError, match="loud"):
        env.run()


def test_defused_failure_is_silent():
    env = des.Environment()
    ev = env.event().fail(RuntimeError("quiet"))
    ev.defuse()
    env.run()  # should not raise


def test_callbacks_invoked_with_event():
    env = des.Environment()
    seen = []
    ev = env.event()
    ev.callbacks.append(lambda e: seen.append(e.value))
    ev.succeed("v")
    env.run()
    assert seen == ["v"]


def test_processed_event_has_no_callbacks():
    env = des.Environment()
    ev = env.event().succeed()
    env.run()
    assert ev.processed
    assert ev.callbacks is None


def test_trigger_copies_success_state():
    env = des.Environment()
    src = env.event().succeed("payload")
    dst = env.event()
    dst.trigger(src)
    assert dst.ok and dst.value == "payload"
    env.run()


def test_trigger_copies_failure_state():
    env = des.Environment()
    exc = ValueError("boom")
    src = env.event()
    src._ok = False
    src._value = exc
    dst = env.event()
    dst.trigger(src)
    dst.defuse()
    assert not dst.ok and dst.value is exc
    env.run()


def test_and_operator_builds_allof():
    env = des.Environment()
    a, b = env.timeout(1, "a"), env.timeout(2, "b")
    both = a & b
    result = env.run(until=both)
    assert result.values() == ["a", "b"]
    assert env.now == 2


def test_or_operator_builds_anyof():
    env = des.Environment()
    a, b = env.timeout(1, "a"), env.timeout(2, "b")
    first = a | b
    result = env.run(until=first)
    assert result.values() == ["a"]
    assert env.now == 1


def test_timeout_carries_value():
    env = des.Environment()
    t = env.timeout(1.0, value={"k": 1})
    env.run()
    assert t.value == {"k": 1}
