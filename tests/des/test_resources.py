"""Tests for Resource / PriorityResource / Container / Store."""

import pytest

from repro import des


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------
def test_resource_capacity_validation():
    env = des.Environment()
    with pytest.raises(ValueError):
        des.Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = des.Environment()
    res = des.Resource(env, capacity=2)
    starts = []

    def user(env, res, name):
        with res.request() as req:
            yield req
            starts.append((name, env.now))
            yield env.timeout(10)

    for n in ("a", "b", "c"):
        env.process(user(env, res, n))
    env.run(until=1)
    assert [s[0] for s in starts] == ["a", "b"]
    assert res.count == 2
    assert len(res.queue) == 1


def test_resource_fifo_grant_order():
    env = des.Environment()
    res = des.Resource(env, capacity=1)
    order = []

    def user(env, res, name):
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for n in range(5):
        env.process(user(env, res, n))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_released_on_context_exit():
    env = des.Environment()
    res = des.Resource(env, capacity=1)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(user(env, res))
    env.run()
    assert res.count == 0


def test_resource_release_idempotent_for_ungranted():
    env = des.Environment()
    res = des.Resource(env, capacity=1)
    held = res.request()
    pending = res.request()
    assert not pending.triggered
    res.release(pending)  # cancels, must not raise
    res.release(held)
    assert res.count == 0


def test_priority_requests_jump_queue():
    env = des.Environment()
    res = des.PriorityResource(env, capacity=1)
    order = []

    def user(env, res, name, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(10)

    env.process(user(env, res, "first", 0, 0))      # holds the slot
    env.process(user(env, res, "low", 5, 1))        # queued at t=1
    env.process(user(env, res, "high", -1, 2))      # queued at t=2, jumps
    env.run()
    assert order == ["first", "high", "low"]


def test_resource_count_and_queue_properties():
    env = des.Environment()
    res = des.Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    assert res.count == 1
    assert res.queue == [r2, r3]
    env.run()


# ----------------------------------------------------------------------
# Container
# ----------------------------------------------------------------------
def test_container_init_validation():
    env = des.Environment()
    with pytest.raises(ValueError):
        des.Container(env, capacity=0)
    with pytest.raises(ValueError):
        des.Container(env, capacity=5, init=6)
    with pytest.raises(ValueError):
        des.Container(env, capacity=5, init=-1)


def test_container_get_blocks_until_available():
    env = des.Environment()
    c = des.Container(env, capacity=100, init=0)
    got = []

    def getter(env, c):
        yield c.get(30)
        got.append(env.now)

    def putter(env, c):
        yield env.timeout(5)
        yield c.put(30)

    env.process(getter(env, c))
    env.process(putter(env, c))
    env.run()
    assert got == [5]
    assert c.level == 0


def test_container_put_blocks_when_full():
    env = des.Environment()
    c = des.Container(env, capacity=10, init=10)
    done = []

    def putter(env, c):
        yield c.put(5)
        done.append(env.now)

    def getter(env, c):
        yield env.timeout(3)
        yield c.get(5)

    env.process(putter(env, c))
    env.process(getter(env, c))
    env.run()
    assert done == [3]
    assert c.level == 10


def test_container_amount_validation():
    env = des.Environment()
    c = des.Container(env, capacity=10)
    with pytest.raises(ValueError):
        c.get(0)
    with pytest.raises(ValueError):
        c.put(-1)
    with pytest.raises(ValueError):
        c.put(11)  # can never fit


def test_container_level_accounting():
    env = des.Environment()
    c = des.Container(env, capacity=100, init=50)

    def proc(env, c):
        yield c.put(25)
        yield c.get(60)

    env.process(proc(env, c))
    env.run()
    assert c.level == 15


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_fifo_order():
    env = des.Environment()
    s = des.Store(env)
    got = []

    def producer(env, s):
        for i in range(3):
            yield s.put(i)

    def consumer(env, s):
        for _ in range(3):
            item = yield s.get()
            got.append(item)

    env.process(producer(env, s))
    env.process(consumer(env, s))
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_item():
    env = des.Environment()
    s = des.Store(env)
    got = []

    def consumer(env, s):
        item = yield s.get()
        got.append((env.now, item))

    def producer(env, s):
        yield env.timeout(4)
        yield s.put("x")

    env.process(consumer(env, s))
    env.process(producer(env, s))
    env.run()
    assert got == [(4, "x")]


def test_store_put_blocks_when_full():
    env = des.Environment()
    s = des.Store(env, capacity=1)
    done = []

    def producer(env, s):
        yield s.put(1)
        yield s.put(2)
        done.append(env.now)

    def consumer(env, s):
        yield env.timeout(7)
        yield s.get()

    env.process(producer(env, s))
    env.process(consumer(env, s))
    env.run()
    assert done == [7]


def test_store_filter_get():
    env = des.Environment()
    s = des.Store(env)
    got = []

    def producer(env, s):
        for item in ("apple", "banana", "cherry"):
            yield s.put(item)

    def consumer(env, s):
        item = yield s.get(filter=lambda x: x.startswith("b"))
        got.append(item)

    env.process(producer(env, s))
    env.process(consumer(env, s))
    env.run()
    assert got == ["banana"]
    assert s.items == ["apple", "cherry"]


def test_store_filter_get_waits_for_match():
    env = des.Environment()
    s = des.Store(env)
    got = []

    def consumer(env, s):
        item = yield s.get(filter=lambda x: x > 10)
        got.append((env.now, item))

    def producer(env, s):
        yield s.put(1)
        yield env.timeout(2)
        yield s.put(50)

    env.process(consumer(env, s))
    env.process(producer(env, s))
    env.run()
    assert got == [(2, 50)]


def test_store_capacity_validation():
    env = des.Environment()
    with pytest.raises(ValueError):
        des.Store(env, capacity=0)
