"""Tests for trace comparison and workflow linting."""

import pytest

from repro.analysis.compare import compare_traces, render_comparison
from repro.platform.presets import TABLE_I
from repro.scenarios import run_swarp
from repro.storage import BBMode
from repro.workflow import File, Task, Workflow
from repro.workflow.checks import lint_workflow
from repro.workflow.swarp import make_swarp

SPEED = TABLE_I["cori"]["core_speed"]


# ----------------------------------------------------------------------
# compare_traces
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def two_traces():
    kwargs = dict(
        system="cori",
        bb_mode=BBMode.PRIVATE,
        n_pipelines=2,
        include_stage_in=False,
        emulated=True,
        seed=None,
    )
    slow = run_swarp(input_fraction=0.0, intermediates_in_bb=False, **kwargs)
    fast = run_swarp(input_fraction=1.0, intermediates_in_bb=True, **kwargs)
    return slow.trace, fast.trace


def test_comparison_makespan_speedup(two_traces):
    slow, fast = two_traces
    comparison = compare_traces(slow, fast)
    assert comparison.makespan_speedup > 1.0
    assert comparison.baseline_makespan == slow.makespan


def test_comparison_group_speedups(two_traces):
    slow, fast = two_traces
    comparison = compare_traces(slow, fast)
    assert set(comparison.groups) == {"resample", "combine"}
    assert comparison.groups["resample"].speedup > 1.0


def test_comparison_improvements_listed(two_traces):
    slow, fast = two_traces
    comparison = compare_traces(slow, fast)
    assert comparison.biggest_improvements  # everything got faster
    assert comparison.biggest_regressions == ()
    for delta in comparison.biggest_improvements:
        assert delta.delta < 0


def test_comparison_rejects_mismatched_traces(two_traces):
    slow, _ = two_traces
    other = run_swarp(n_pipelines=1, include_stage_in=False).trace
    with pytest.raises(ValueError, match="different task sets"):
        compare_traces(slow, other)


def test_render_comparison(two_traces):
    slow, fast = two_traces
    text = render_comparison(compare_traces(slow, fast))
    assert "makespan" in text
    assert "resample" in text


def test_comparison_identical_trace_is_neutral(two_traces):
    slow, _ = two_traces
    comparison = compare_traces(slow, slow)
    assert comparison.makespan_speedup == pytest.approx(1.0)
    assert comparison.biggest_regressions == ()
    assert comparison.biggest_improvements == ()


# ----------------------------------------------------------------------
# lint_workflow
# ----------------------------------------------------------------------
def test_clean_workflow_has_no_warnings():
    wf = make_swarp(n_pipelines=1)
    findings = lint_workflow(wf, max_host_cores=32)
    assert [f for f in findings if f.severity == "warning"] == []


def test_zero_flops_flagged():
    wf = Workflow("w", [Task("t", flops=0, cores=1)])
    codes = {f.code for f in lint_workflow(wf)}
    assert "zero-flops" in codes


def test_stage_in_zero_flops_not_flagged():
    wf = make_swarp(n_pipelines=1)  # stage_in has 0 flops by design
    codes = {f.code for f in lint_workflow(wf)}
    assert "zero-flops" not in codes


def test_detached_and_disconnected_flagged():
    f = File("f", 1)
    tasks = [
        Task("a", flops=1, outputs=(f,)),
        Task("b", flops=1, inputs=(f,)),
        Task("island", flops=1),
    ]
    codes = {x.code for x in lint_workflow(Workflow("w", tasks))}
    assert "detached-task" in codes
    assert "disconnected" in codes


def test_cores_clamped_flagged():
    wf = Workflow("w", [Task("t", flops=1, cores=128)])
    codes = {f.code for f in lint_workflow(wf, max_host_cores=32)}
    assert "cores-clamped" in codes
    # Without host information the check is skipped.
    codes = {f.code for f in lint_workflow(wf)}
    assert "cores-clamped" not in codes


def test_size_skew_flagged():
    tasks = [
        Task("a", flops=1, outputs=(File("tiny", 1),)),
        Task("b", flops=1, inputs=(File("tiny", 1),), outputs=(File("huge", 2e12),)),
        Task("c", flops=1, inputs=(File("huge", 2e12),)),
    ]
    codes = {f.code for f in lint_workflow(Workflow("w", tasks))}
    assert "size-skew" in codes


def test_unused_output_flagged_for_non_exit_task():
    used = File("used", 1)
    dangling = File("dangling", 1)
    tasks = [
        Task("a", flops=1, outputs=(used, dangling)),
        Task("b", flops=1, inputs=(used,)),
    ]
    findings = lint_workflow(Workflow("w", tasks))
    unused = [f for f in findings if f.code == "unused-output"]
    assert len(unused) == 1
    assert "dangling" in unused[0].message


def test_exit_task_outputs_not_flagged():
    wf = make_swarp(n_pipelines=1, include_stage_in=False)
    codes = {f.code for f in lint_workflow(wf)}
    assert "unused-output" not in codes
