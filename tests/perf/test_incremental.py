"""Differential tests: the incremental solver against the global oracle.

The contract (see ``docs/PERF.md``):

* per recomputed component, rates are **bit-identical** to running
  :func:`max_min_fair_rates` on that component alone (the engine
  literally calls it);
* against the *whole-graph* oracle, rates are bit-identical whenever
  the graph is one connected component, and equal to within float
  associativity (1e-9 relative) when several components exist.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fairshare import max_min_fair_rates
from repro.perf import IncrementalMaxMin, incremental_max_min_rates, static_capacity

_REL = 1e-9


def close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL, abs_tol=1e-12)


def make_engine(capacities):
    return IncrementalMaxMin(static_capacity(capacities))


# ----------------------------------------------------------------------
# Engine bookkeeping
# ----------------------------------------------------------------------
def test_admit_drain_bookkeeping():
    engine = make_engine({"l": 100.0})
    engine.admit(1, ["l"])
    engine.admit(2, ["l"])
    assert 1 in engine and len(engine) == 2
    assert engine.dirty
    engine.solve()
    assert not engine.dirty
    engine.drain(1)
    assert 1 not in engine and engine.dirty
    assert engine.solve() == {2: 100.0}


def test_admit_duplicate_fid_rejected():
    engine = make_engine({"l": 100.0})
    engine.admit(1, ["l"])
    with pytest.raises(ValueError, match="already admitted"):
        engine.admit(1, ["l"])


def test_drain_unknown_fid_rejected():
    engine = make_engine({"l": 100.0})
    with pytest.raises(KeyError, match="not admitted"):
        engine.drain(99)


def test_linkless_uncapped_flow_rejected():
    engine = make_engine({})
    with pytest.raises(ValueError, match="no links and no cap"):
        engine.admit(1, [])


def test_linkless_capped_flow_gets_its_cap():
    engine = make_engine({})
    engine.admit(1, [], cap=42.0)
    assert engine.solve() == {1: 42.0}


def test_solve_without_dirt_is_a_noop():
    engine = make_engine({"l": 100.0})
    engine.admit(1, ["l"])
    engine.solve()
    assert engine.solve() == {}
    assert engine.stats.solver_calls == 1


# ----------------------------------------------------------------------
# Component isolation
# ----------------------------------------------------------------------
def test_untouched_component_is_not_recomputed():
    capacities = {"a": 100.0, "b": 60.0}
    engine = make_engine(capacities)
    engine.admit(1, ["a"])
    engine.admit(2, ["a"])
    engine.admit(3, ["b"])
    engine.solve()
    calls = engine.stats.solver_calls

    engine.admit(4, ["b"])
    changed = engine.solve()
    # Only component {3, 4} was touched; flows 1/2 keep cached rates.
    assert set(changed) == {3, 4}
    assert engine.stats.solver_calls == calls + 1
    assert engine.rate(1) == 50.0 and engine.rate(2) == 50.0
    assert changed[3] == 30.0 and changed[4] == 30.0


def test_component_rates_bit_identical_to_oracle_on_component():
    capacities = {"a": 97.0, "b": 31.0, "c": 53.0}
    engine = make_engine(capacities)
    engine.admit(1, ["a", "b"], cap=40.0)
    engine.admit(2, ["a"])
    engine.admit(3, ["c"])  # separate component
    engine.solve()

    oracle = max_min_fair_rates(
        [["a", "b"], ["a"]], {"a": 97.0, "b": 31.0}, [40.0, float("inf")]
    )
    # Bit-identical, not just close: the engine runs the same function
    # on the same component subproblem.
    assert [engine.rate(1), engine.rate(2)] == oracle


def test_connected_graph_bit_identical_to_global_oracle():
    capacities = {"a": 80.0, "b": 45.0, "c": 120.0}
    flow_links = [["a", "b"], ["b", "c"], ["a", "c"], ["a"]]
    engine = make_engine(capacities)
    for fid, links in enumerate(flow_links):
        engine.admit(fid, links)
    engine.solve()
    oracle = max_min_fair_rates(flow_links, capacities)
    assert [engine.rate(fid) for fid in range(len(flow_links))] == oracle
    assert engine.stats.full_solves == 1


def test_full_solve_counted_only_when_component_spans_graph():
    engine = make_engine({"a": 10.0, "b": 10.0})
    engine.admit(1, ["a"])
    engine.admit(2, ["b"])
    engine.solve()
    assert engine.stats.full_solves == 0


# ----------------------------------------------------------------------
# Stateless wrapper (the registered "incremental" allocator)
# ----------------------------------------------------------------------
def test_wrapper_matches_oracle_validation():
    with pytest.raises(ValueError, match="non-positive capacity"):
        incremental_max_min_rates([["l"]], {"l": 0.0})
    with pytest.raises(ValueError, match="unknown link"):
        incremental_max_min_rates([["nope"]], {"l": 1.0})
    with pytest.raises(ValueError, match="flow_caps length"):
        incremental_max_min_rates([["l"]], {"l": 1.0}, flow_caps=[1.0, 2.0])


def test_wrapper_matches_oracle_rates():
    flow_links = [["a"], ["a", "b"], ["c"], []]
    capacities = {"a": 100.0, "b": 20.0, "c": 70.0}
    caps = [float("inf"), float("inf"), 10.0, 5.0]
    got = incremental_max_min_rates(flow_links, capacities, caps)
    expected = max_min_fair_rates(flow_links, capacities, caps)
    assert all(close(g, e) for g, e in zip(got, expected))


# ----------------------------------------------------------------------
# Randomized differential suite
# ----------------------------------------------------------------------
LINKS = ("l0", "l1", "l2", "l3", "l4", "l5")


@st.composite
def flow_graphs(draw):
    n_links = draw(st.integers(min_value=1, max_value=len(LINKS)))
    links = LINKS[:n_links]
    capacities = {
        link: draw(st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
        for link in links
    }
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flow_links = [
        draw(st.lists(st.sampled_from(links), min_size=1, max_size=3, unique=True))
        for _ in range(n_flows)
    ]
    caps = [
        draw(st.one_of(st.just(float("inf")), st.floats(min_value=1e-3, max_value=1e5)))
        for _ in range(n_flows)
    ]
    return flow_links, capacities, caps


@settings(max_examples=150, deadline=None)
@given(problem=flow_graphs())
def test_wrapper_differential_random_graphs(problem):
    flow_links, capacities, caps = problem
    got = incremental_max_min_rates(flow_links, capacities, caps)
    expected = max_min_fair_rates(flow_links, capacities, caps)
    assert all(close(g, e) for g, e in zip(got, expected))


@st.composite
def admit_drain_sequences(draw):
    """A random interleaving of admits and drains over random links."""
    _, capacities, _ = draw(flow_graphs())
    links = sorted(capacities)
    n_ops = draw(st.integers(min_value=1, max_value=24))
    ops = []
    live: list[int] = []
    next_fid = 0
    for _ in range(n_ops):
        if live and draw(st.booleans()):
            victim = live.pop(draw(st.integers(0, len(live) - 1)))
            ops.append(("drain", victim, None, None))
        else:
            flinks = draw(
                st.lists(st.sampled_from(links), min_size=1, max_size=3, unique=True)
            )
            cap = draw(
                st.one_of(
                    st.just(float("inf")), st.floats(min_value=1e-3, max_value=1e5)
                )
            )
            ops.append(("admit", next_fid, flinks, cap))
            live.append(next_fid)
            next_fid += 1
    return capacities, ops


@settings(max_examples=100, deadline=None)
@given(problem=admit_drain_sequences())
def test_engine_differential_admit_drain(problem):
    """After every op, engine state equals a from-scratch global solve."""
    capacities, ops = problem
    engine = make_engine(capacities)
    reference: dict[int, tuple] = {}
    reference_caps: dict[int, float] = {}
    for op, fid, links, cap in ops:
        if op == "admit":
            engine.admit(fid, links, cap)
            reference[fid] = tuple(links)
            reference_caps[fid] = cap
        else:
            engine.drain(fid)
            del reference[fid]
            del reference_caps[fid]
        engine.solve()
        if not reference:
            assert engine.rates == {}
            continue
        fids = list(reference)
        expected = max_min_fair_rates(
            [reference[f] for f in fids],
            capacities,
            [reference_caps[f] for f in fids],
        )
        for f, e in zip(fids, expected):
            assert close(engine.rate(f), e), (f, engine.rate(f), e)
