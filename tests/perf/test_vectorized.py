"""Three-way differential tests: oracle vs incremental vs vectorized.

The vectorized kernel's contract (see ``docs/PERF.md``):

* same validation errors as :func:`max_min_fair_rates`;
* rates within 1e-9 relative of both the oracle and the incremental
  engine across capacities spanning 1e-12..1e6, flow caps, single-flow
  links, and arbitrary admit/drain interleavings;
* identical makespans end-to-end — selecting ``"vectorized"`` changes
  wall time, never the event stream (two identical runs and a
  serial-vs-parallel sweep must agree exactly).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fairshare import max_min_fair_rates
from repro.perf import (
    FlowSlots,
    IncrementalMaxMin,
    VectorizedMaxMin,
    incremental_max_min_rates,
    static_capacity,
    vectorized_max_min_rates,
)

_REL = 1e-9


def close(a: float, b: float) -> bool:
    # Relative-only: capacities go down to 1e-12, where an absolute
    # tolerance would mask real disagreement.
    return a == b or math.isclose(a, b, rel_tol=_REL, abs_tol=0.0)


def make_engine(capacities):
    return VectorizedMaxMin(static_capacity(capacities))


# ----------------------------------------------------------------------
# Stateless allocator: validation parity with the oracle
# ----------------------------------------------------------------------
def test_validation_matches_oracle():
    with pytest.raises(ValueError, match="non-positive capacity"):
        vectorized_max_min_rates([["l"]], {"l": 0.0})
    with pytest.raises(ValueError, match="unknown link"):
        vectorized_max_min_rates([["nope"]], {"l": 1.0})
    with pytest.raises(ValueError, match="flow_caps length"):
        vectorized_max_min_rates([["l"]], {"l": 1.0}, flow_caps=[1.0, 2.0])
    with pytest.raises(ValueError, match="no links and no cap"):
        vectorized_max_min_rates([[]], {})


def test_empty_problem():
    assert vectorized_max_min_rates([], {}) == []
    assert vectorized_max_min_rates([], {"l": 5.0}) == []


def test_fixed_cases_match_oracle():
    cases = [
        # (flow_links, capacities, flow_caps)
        ([["a"]], {"a": 100.0}, None),                       # single-flow link
        ([["a"], ["a"]], {"a": 100.0}, None),                # equal split
        ([["a"], ["a", "b"]], {"a": 100.0, "b": 20.0}, None),
        ([["a"], ["a"], ["b"]], {"a": 90.0, "b": 50.0}, [10.0, 1e18, 1e18]),
        ([[], ["a"]], {"a": 7.0}, [3.0, 1e18]),              # linkless capped
        ([["a"]], {"a": 1e-12}, None),                       # tiny capacity
        ([["a"], ["a"]], {"a": 1e6}, None),                  # huge capacity
        ([["a", "b"], ["b", "c"], ["a", "c"]],
         {"a": 1e-12, "b": 1.0, "c": 1e6}, None),            # mixed scales
    ]
    for flow_links, capacities, caps in cases:
        expected = max_min_fair_rates(flow_links, capacities, caps)
        got = vectorized_max_min_rates(flow_links, capacities, caps)
        assert len(got) == len(expected)
        assert all(close(g, e) for g, e in zip(got, expected)), (
            flow_links, capacities, caps, got, expected,
        )


def test_identical_constraint_flows_share_one_rate():
    # Ten flows with the same link set and cap form one group: their
    # rates are not merely close but the same float.
    rates = vectorized_max_min_rates(
        [["a", "b"]] * 10, {"a": 100.0, "b": 33.0}
    )
    assert len(set(rates)) == 1


def test_wide_problem_uses_dense_path():
    # 40 links forces the numpy argmin branch (>= _NP_MIN_LINKS); the
    # scalar branch is covered by the tiny cases above.  Both must
    # match the oracle.
    links = [f"l{i}" for i in range(40)]
    capacities = {link: 10.0 + i for i, link in enumerate(links)}
    flow_links = [[links[i % 40], links[(i * 7 + 1) % 40]] for i in range(80)]
    expected = max_min_fair_rates(flow_links, capacities)
    got = vectorized_max_min_rates(flow_links, capacities)
    assert all(close(g, e) for g, e in zip(got, expected))


# ----------------------------------------------------------------------
# Stateful engine: bookkeeping parity with IncrementalMaxMin
# ----------------------------------------------------------------------
def test_admit_drain_bookkeeping():
    engine = make_engine({"l": 100.0})
    engine.admit(1, ["l"])
    engine.admit(2, ["l"])
    assert 1 in engine and len(engine) == 2
    assert engine.dirty
    engine.solve()
    assert not engine.dirty
    engine.drain(1)
    assert 1 not in engine and engine.dirty
    assert engine.solve() == {2: 100.0}


def test_admit_duplicate_fid_rejected():
    engine = make_engine({"l": 100.0})
    engine.admit(1, ["l"])
    with pytest.raises(ValueError, match="already admitted"):
        engine.admit(1, ["l"])


def test_drain_unknown_fid_rejected():
    engine = make_engine({"l": 100.0})
    with pytest.raises(KeyError, match="not admitted"):
        engine.drain(99)


def test_linkless_uncapped_flow_rejected():
    engine = make_engine({})
    with pytest.raises(ValueError, match="no links and no cap"):
        engine.admit(1, [])


def test_linkless_capped_flow_gets_its_cap():
    engine = make_engine({})
    engine.admit(1, [], cap=42.0)
    assert engine.solve() == {1: 42.0}


def test_solve_without_dirt_is_a_noop():
    engine = make_engine({"l": 100.0})
    engine.admit(1, ["l"])
    engine.solve()
    assert engine.solve() == {}
    assert engine.stats.solver_calls == 1


def test_group_granularity_stats():
    # 8 identical flows are one group: a solve touches 1 link but
    # reports 8 flows solved (stats stay comparable with incremental).
    engine = make_engine({"l": 100.0})
    for fid in range(8):
        engine.admit(fid, ["l"])
    changed = engine.solve()
    assert len(changed) == 8
    assert engine.stats.flows_solved == 8
    assert engine.stats.links_touched == 1
    assert all(close(rate, 12.5) for rate in changed.values())


def test_untouched_component_is_not_recomputed():
    engine = make_engine({"a": 100.0, "b": 60.0})
    engine.admit(1, ["a"])
    engine.admit(2, ["a"])
    engine.admit(3, ["b"])
    engine.solve()
    calls = engine.stats.solver_calls

    engine.admit(4, ["b"])
    changed = engine.solve()
    assert set(changed) == {3, 4}
    assert engine.stats.solver_calls == calls + 1
    assert engine.rate(1) == 50.0 and engine.rate(2) == 50.0
    assert changed[3] == 30.0 and changed[4] == 30.0


def test_full_solve_counted_only_when_component_spans_graph():
    engine = make_engine({"a": 10.0, "b": 10.0})
    engine.admit(1, ["a"])
    engine.admit(2, ["b"])
    engine.solve()
    assert engine.stats.full_solves == 0


# ----------------------------------------------------------------------
# Randomized three-way differential suite
# ----------------------------------------------------------------------
LINKS = ("l0", "l1", "l2", "l3", "l4", "l5")


@st.composite
def flow_graphs(draw):
    """Random problems spanning capacities 1e-12..1e6."""
    n_links = draw(st.integers(min_value=1, max_value=len(LINKS)))
    links = LINKS[:n_links]
    capacities = {
        link: draw(st.floats(min_value=1e-12, max_value=1e6, allow_nan=False))
        for link in links
    }
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flow_links = [
        draw(st.lists(st.sampled_from(links), min_size=1, max_size=3, unique=True))
        for _ in range(n_flows)
    ]
    caps = [
        draw(st.one_of(st.just(float("inf")), st.floats(min_value=1e-12, max_value=1e5)))
        for _ in range(n_flows)
    ]
    return flow_links, capacities, caps


@settings(max_examples=150, deadline=None)
@given(problem=flow_graphs())
def test_three_way_differential_random_graphs(problem):
    flow_links, capacities, caps = problem
    oracle = max_min_fair_rates(flow_links, capacities, caps)
    incremental = incremental_max_min_rates(flow_links, capacities, caps)
    vectorized = vectorized_max_min_rates(flow_links, capacities, caps)
    for o, i, v in zip(oracle, incremental, vectorized):
        assert close(v, o), (v, o)
        assert close(v, i), (v, i)


@st.composite
def admit_drain_sequences(draw):
    """A random interleaving of admits and drains over random links."""
    _, capacities, _ = draw(flow_graphs())
    links = sorted(capacities)
    n_ops = draw(st.integers(min_value=1, max_value=24))
    ops = []
    live: list[int] = []
    next_fid = 0
    for _ in range(n_ops):
        if live and draw(st.booleans()):
            victim = live.pop(draw(st.integers(0, len(live) - 1)))
            ops.append(("drain", victim, None, None))
        else:
            flinks = draw(
                st.lists(st.sampled_from(links), min_size=1, max_size=3, unique=True)
            )
            cap = draw(
                st.one_of(
                    st.just(float("inf")), st.floats(min_value=1e-12, max_value=1e5)
                )
            )
            ops.append(("admit", next_fid, flinks, cap))
            live.append(next_fid)
            next_fid += 1
    return capacities, ops


@settings(max_examples=100, deadline=None)
@given(problem=admit_drain_sequences())
def test_engine_differential_admit_drain(problem):
    """After every op, both engines equal a from-scratch global solve."""
    capacities, ops = problem
    vec = make_engine(capacities)
    inc = IncrementalMaxMin(static_capacity(capacities))
    reference: dict[int, tuple] = {}
    reference_caps: dict[int, float] = {}
    for op, fid, links, cap in ops:
        if op == "admit":
            vec.admit(fid, links, cap)
            inc.admit(fid, links, cap)
            reference[fid] = tuple(links)
            reference_caps[fid] = cap
        else:
            vec.drain(fid)
            inc.drain(fid)
            del reference[fid]
            del reference_caps[fid]
        vec.solve()
        inc.solve()
        if not reference:
            assert vec.rates == {}
            continue
        fids = list(reference)
        expected = max_min_fair_rates(
            [reference[f] for f in fids],
            capacities,
            [reference_caps[f] for f in fids],
        )
        for f, e in zip(fids, expected):
            assert close(vec.rate(f), e), (f, vec.rate(f), e)
            assert close(vec.rate(f), inc.rate(f)) or close(inc.rate(f), e)


# ----------------------------------------------------------------------
# FlowSlots: the dense flow-progress records
# ----------------------------------------------------------------------
def test_slots_admit_drop_recycle():
    slots = FlowSlots(capacity=2)
    a = slots.admit(10, size=100.0, remaining=100.0)
    b = slots.admit(11, size=50.0, remaining=50.0)
    assert len(slots) == 2 and a != b
    slots.drop(10)
    assert len(slots) == 1
    # The freed slot is recycled before any growth.
    c = slots.admit(12, size=10.0, remaining=10.0)
    assert c == a
    assert slots.remaining_of(12) == 10.0


def test_slots_grow_preserves_state():
    slots = FlowSlots(capacity=1)
    for fid in range(5):
        slots.admit(fid, size=float(fid + 1), remaining=float(fid + 1))
    assert len(slots) == 5
    assert [slots.remaining_of(fid) for fid in range(5)] == [
        1.0, 2.0, 3.0, 4.0, 5.0,
    ]


def test_slots_advance_matches_scalar_arithmetic():
    slots = FlowSlots()
    slots.admit(1, size=100.0, remaining=100.0)
    slots.admit(2, size=30.0, remaining=30.0)
    slots.set_rate(1, 7.0, now=0.0)
    slots.set_rate(2, 3.0, now=0.0)
    dt = 2.5
    slots.advance(dt)
    # Bit-identical to the scalar bookkeeping, not merely close.
    assert slots.remaining_of(1) == max(0.0, 100.0 - 7.0 * dt)
    assert slots.remaining_of(2) == max(0.0, 30.0 - 3.0 * dt)
    slots.advance(1e9)
    assert slots.remaining_of(1) == 0.0  # clamped, never negative


def test_slots_finish_ordering():
    slots = FlowSlots()
    slots.admit(1, size=100.0, remaining=100.0)
    slots.admit(2, size=10.0, remaining=10.0)
    assert slots.peek_finish() is None  # no rates yet
    slots.set_rate(1, 10.0, now=5.0)
    slots.set_rate(2, 10.0, now=5.0)
    assert slots.peek_finish() == 6.0  # flow 2: 5.0 + 10/10
    assert slots.next_finished_fid() == 2
    slots.drop(2)
    assert slots.peek_finish() == 15.0
    assert slots.next_finished_fid() == 1


def test_slots_drained_fids_filters_stale_slots():
    slots = FlowSlots()
    slots.admit(1, size=100.0, remaining=100.0)
    slots.admit(2, size=10.0, remaining=10.0)
    slots.set_rate(1, 1.0, now=0.0)
    slots.set_rate(2, 10.0, now=0.0)
    slots.advance(1.0)  # flow 2 hits zero
    drained = slots.drained_fids(time_quantum=1e-12, eps=1e-9)
    assert drained == [2]
    # A freed slot's zero remaining must not resurface as drained.
    slots.drop(2)
    assert slots.drained_fids(time_quantum=1e-12, eps=1e-9) == []


def test_zero_byte_transfer_completes_under_vectorized():
    from repro.des import Environment
    from repro.network import FlowNetwork
    from repro.network.flownet import Link

    env = Environment()
    net = FlowNetwork(env, allocator="vectorized")
    done = net.transfer(0.0, [Link("l", bandwidth=100.0)])
    env.run(until=done)
    assert done.processed


# ----------------------------------------------------------------------
# End-to-end determinism
# ----------------------------------------------------------------------
def _tiny_genomes(allocator):
    from repro.scenarios import run_genomes

    return run_genomes(
        system="cori",
        input_fraction=0.5,
        n_chromosomes=2,
        n_compute=2,
        network_allocator=allocator,
    ).makespan


def test_vectorized_run_is_deterministic_and_matches_other_allocators():
    first = _tiny_genomes("vectorized")
    second = _tiny_genomes("vectorized")
    assert first == second  # bit-identical event stream across runs
    assert first == _tiny_genomes("incremental")
    assert first == _tiny_genomes("max-min")


def test_vectorized_sweep_identical_serial_and_parallel():
    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec.cartesian(
        "fig13",
        "repro.experiments.fig13:compute_point",
        axes={"fraction": [0.0, 0.5, 1.0]},
        constants={
            "system": "cori",
            "n_chromosomes": 2,
            "network_allocator": "vectorized",
        },
    )
    serial = run_sweep(spec, workers=1)
    parallel = run_sweep(spec, workers=4)
    assert serial.values() == parallel.values()
    assert len(serial.values()) == 3
