"""FlowNetwork-level differential tests: incremental path vs default.

The incremental allocator is an optimization of the event loop, not a
model change — a simulation run with ``allocator="incremental"`` must
produce the same flow completion times as the default path (to float
associativity: per-component solves accumulate progressive-filling
increments in a different order than the global solve).
"""

from __future__ import annotations

import math
import random

from repro import des
from repro.network import FlowNetwork, Link
from repro.obs import Observer

_REL = 1e-9


def _run_random_sim(allocator: str, seed: int, n_flows: int = 60):
    """Admit randomized flows over a clustered topology; return
    completion times by label."""
    rng = random.Random(seed)
    env = des.Environment()
    net = FlowNetwork(env, allocator=allocator)
    clusters = [
        (Link(f"c{i}:up", bandwidth=100.0 + i), Link(f"c{i}:down", bandwidth=70.0 + i))
        for i in range(4)
    ]
    core = Link("core", bandwidth=500.0)

    def workload():
        for n in range(n_flows):
            up, down = clusters[rng.randrange(len(clusters))]
            links = [up, down] + ([core] if rng.random() < 0.2 else [])
            size = rng.uniform(1.0, 5000.0)
            cap = rng.choice([float("inf"), 40.0, 15.0])
            net.transfer(size, links, max_rate=cap, label=f"f{n}")
            if rng.random() < 0.7:
                yield env.timeout(rng.uniform(0.0, 3.0))
        # else: next transfer starts at the same instant (batch case)

    env.process(workload())
    env.run()
    assert len(net.completed) == n_flows
    return {f.label: f.completed_at for f in net.completed}


def test_incremental_matches_default_on_random_sims():
    for seed in (1, 7, 23):
        default = _run_random_sim("max-min", seed)
        incremental = _run_random_sim("incremental", seed)
        assert default.keys() == incremental.keys()
        for label, expected in default.items():
            assert math.isclose(
                incremental[label], expected, rel_tol=_REL, abs_tol=1e-9
            ), (label, incremental[label], expected)


def test_same_timestamp_admits_are_batched_into_one_solve():
    """N admits at one instant must cost one deferred solve, not N."""

    def run(allocator: str) -> tuple[float, float]:
        obs = Observer(metrics=["network"])
        env = des.Environment()
        obs.attach(env)
        net = FlowNetwork(env, allocator=allocator)
        link = Link("l", bandwidth=100.0)

        def start():
            for n in range(8):
                net.transfer(1000.0, [link], label=f"f{n}")
            yield env.timeout(0.0)

        env.process(start())
        env.run()
        solves = obs.registry.counter("network.solver_calls").value
        makespan = max(f.completed_at for f in net.completed)
        return solves, makespan

    default_solves, default_makespan = run("max-min")
    incremental_solves, incremental_makespan = run("incremental")
    assert math.isclose(incremental_makespan, default_makespan, rel_tol=_REL)
    # Default path: one global solve per admit (8) + completions.
    assert default_solves >= 8
    # Incremental path: the 8 same-timestamp admits coalesce into one
    # component solve; completions add a few more.
    assert incremental_solves < default_solves
    assert incremental_solves <= 8


def test_incremental_zero_byte_and_loopback_flows():
    env = des.Environment()
    net = FlowNetwork(env, allocator="incremental")
    link = Link("l", bandwidth=100.0)
    seen = []

    def p():
        done_empty = net.transfer(0.0, [link], latency=0.5)
        done_loop = net.transfer(123.0, [], max_rate=10.0)
        flow = yield done_empty
        seen.append(("empty", env.now, flow.size))
        flow = yield done_loop
        seen.append(("loop", env.now, flow.size))

    env.process(p())
    env.run()
    assert ("empty", 0.5, 0.0) in seen
    assert any(k == "loop" and math.isclose(t, 12.3) for k, t, _ in seen)


def test_incremental_observer_counters_present():
    obs = Observer(metrics=["network"])
    env = des.Environment()
    obs.attach(env)
    net = FlowNetwork(env, allocator="incremental")
    link = Link("l", bandwidth=10.0)

    def p():
        yield net.transfer(100.0, [link])

    env.process(p())
    env.run()
    registry = obs.registry
    assert registry.counter("network.solver_calls").value >= 1
    assert registry.counter("network.links_touched").value >= 1
    assert registry.counter("network.flows_solved").value >= 1
