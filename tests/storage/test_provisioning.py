"""Tests for DataWarp-style allocation provisioning."""

import pytest

from repro import des
from repro.platform import Platform
from repro.platform.presets import cori_spec
from repro.platform.units import GiB, MB
from repro.storage import (
    BBMode,
    InsufficientStorage,
    burst_buffer_for_allocation,
    provision_allocation,
)
from repro.storage.provisioning import DEFAULT_GRANULARITY
from repro.workflow import File


@pytest.fixture
def platform():
    env = des.Environment()
    return Platform(env, cori_spec(n_compute=1, n_bb_nodes=4))


def test_small_allocation_one_granule(platform):
    alloc = provision_allocation(platform, 5 * GiB)
    assert alloc.granted == DEFAULT_GRANULARITY
    assert alloc.granules == 1
    assert alloc.stripe_width == 1


def test_rounding_to_granularity(platform):
    alloc = provision_allocation(platform, 25 * GiB)
    assert alloc.granted == 2 * DEFAULT_GRANULARITY
    assert alloc.granules == 2
    assert alloc.stripe_width == 2  # round-robin spreads over nodes


def test_large_allocation_stripes_wide(platform):
    alloc = provision_allocation(platform, 100 * GiB)  # 5 granules, 4 nodes
    assert alloc.granules == 5
    assert alloc.stripe_width == 4


def test_exact_multiple_not_rounded(platform):
    alloc = provision_allocation(platform, 3 * DEFAULT_GRANULARITY)
    assert alloc.granted == 3 * DEFAULT_GRANULARITY


def test_custom_granularity(platform):
    alloc = provision_allocation(platform, 7 * GiB, granularity=4 * GiB)
    assert alloc.granted == 8 * GiB
    assert alloc.granules == 2


def test_over_capacity_rejected(platform):
    # 4 nodes × 6.4 TB = 25.6 TB total.
    with pytest.raises(InsufficientStorage):
        provision_allocation(platform, 30e12)


def test_validation(platform):
    with pytest.raises(ValueError):
        provision_allocation(platform, 0)
    with pytest.raises(ValueError):
        provision_allocation(platform, 1 * GiB, granularity=0)
    with pytest.raises(ValueError):
        provision_allocation(platform, 1 * GiB, bb_hosts=[])


def test_service_from_allocation_enforces_granted_capacity(platform):
    alloc = provision_allocation(platform, 5 * GiB)
    service = burst_buffer_for_allocation(platform, alloc, BBMode.STRIPED)
    assert service.capacity == alloc.granted
    assert service.bb_hosts == list(alloc.bb_hosts)
    with pytest.raises(InsufficientStorage):
        service.add_file(File("too-big", alloc.granted + 1))


def test_service_from_allocation_is_usable(platform):
    env = platform.env
    alloc = provision_allocation(platform, 40 * GiB)  # 2 granules → 2 nodes
    service = burst_buffer_for_allocation(platform, alloc, BBMode.STRIPED)
    f = File("data", 100 * MB)
    env.run(until=service.write(f, src_host="cn0"))
    assert service.contains(f)
    # Chunks went to exactly the allocation's nodes.
    disks = {
        link.name.split(":")[0]
        for flow in platform.network.completed
        for link in flow.links
        if ":ssd:write" in link.name
    }
    assert disks == set(alloc.bb_hosts)


def test_wider_stripes_more_aggregate_bandwidth(platform):
    """The paper's point about striping: more BB nodes behind an
    allocation means more aggregate disk bandwidth (when the network
    is not the bottleneck, i.e. for BB-internal staging)."""
    env = platform.env
    narrow = burst_buffer_for_allocation(
        platform, provision_allocation(platform, 5 * GiB), BBMode.STRIPED
    )
    wide = burst_buffer_for_allocation(
        platform, provision_allocation(platform, 80 * GiB), BBMode.STRIPED
    )
    assert wide.stripe_width if hasattr(wide, "stripe_width") else True
    assert len(wide.bb_hosts) > len(narrow.bb_hosts)


# ----------------------------------------------------------------------
# BB-node discovery: declared roles first, name prefix as fallback
# ----------------------------------------------------------------------
def _spec_with_named_bb(bb_name, role):
    from repro.platform import PlatformSpec
    from repro.platform.spec import DiskSpec, HostSpec, HostRole

    return PlatformSpec(
        name="custom",
        hosts=(
            HostSpec(name="cn0", cores=32, core_speed=1e9,
                     role=HostRole.COMPUTE),
            HostSpec(
                name=bb_name,
                cores=1,
                core_speed=1e9,
                role=role,
                disks=(
                    DiskSpec(name="ssd", read_bandwidth=1e9,
                             write_bandwidth=1e9, capacity=100 * GiB),
                ),
            ),
        ),
    )


def test_discovery_honours_declared_role_over_name():
    """Regression: a role-declared BB host named anything (here
    "warp-a", no "bb" prefix) must be discovered — discovery used to
    key on the name prefix alone and would have missed it."""
    import warnings

    from repro.platform.spec import HostRole
    from repro.storage.provisioning import discover_bb_hosts

    env = des.Environment()
    platform = Platform(env, _spec_with_named_bb("warp-a", HostRole.SHARED_BB))
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # declared roles: no deprecation
        assert discover_bb_hosts(platform) == ["warp-a"]
        alloc = provision_allocation(platform, 5 * GiB)
    assert alloc.bb_hosts == ("warp-a",)


def test_discovery_legacy_name_fallback_warns():
    import warnings

    from repro.storage.provisioning import discover_bb_hosts

    env = des.Environment()
    platform = Platform(env, _spec_with_named_bb("bb0", None))
    with pytest.warns(DeprecationWarning, match="role=shared_bb"):
        assert discover_bb_hosts(platform) == ["bb0"]


def test_discovery_role_declared_but_differently_named_is_excluded():
    """A 'bb'-prefixed host that declares a non-BB role must NOT be
    picked up once any host declares shared_bb."""
    from repro.platform import PlatformSpec
    from repro.platform.spec import DiskSpec, HostSpec, HostRole
    from repro.storage.provisioning import discover_bb_hosts

    disks = (
        DiskSpec(name="ssd", read_bandwidth=1e9, write_bandwidth=1e9,
                 capacity=100 * GiB),
    )
    spec = PlatformSpec(
        name="custom",
        hosts=(
            HostSpec(name="bbx-login", cores=1, core_speed=1e9,
                     role=HostRole.COMPUTE),
            HostSpec(name="warp-a", cores=1, core_speed=1e9,
                     role=HostRole.SHARED_BB, disks=disks),
        ),
    )
    env = des.Environment()
    assert discover_bb_hosts(Platform(env, spec)) == ["warp-a"]


# ----------------------------------------------------------------------
# Allocation capacity clamp happens at construction
# ----------------------------------------------------------------------
def test_capacity_clamped_in_constructor_monitor_sees_it(platform):
    """Regression: the allocation clamp used to mutate ``capacity``
    *after* construction, so anything sampling at construction time
    (occupancy gauges, the BB occupancy monitor) saw the full device
    capacity for one sample.  The clamp now goes through the
    constructor."""
    from repro.obs import Observer

    observer = Observer(monitors=True)
    observer.attach(platform.env)
    alloc = provision_allocation(platform, 5 * GiB)
    service = burst_buffer_for_allocation(platform, alloc, BBMode.STRIPED)
    assert service.capacity == alloc.granted
    # The very first occupancy sample already carries the clamped
    # capacity (pre-fix, a sample taken before the post-construction
    # mutation reported the full device capacity).
    service.add_file(File("seed", 1 * GiB))
    gauge = observer.registry.gauges[
        f"storage.{service.name}.capacity_bytes"
    ]
    assert gauge.value == alloc.granted


def test_constructor_capacity_never_exceeds_device(platform):
    from repro.storage import SharedBurstBuffer

    device = SharedBurstBuffer(platform, ["bb0"], BBMode.STRIPED)
    clamped = SharedBurstBuffer(
        platform, ["bb0"], BBMode.STRIPED, capacity=device.capacity * 10
    )
    assert clamped.capacity == device.capacity
