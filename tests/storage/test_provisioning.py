"""Tests for DataWarp-style allocation provisioning."""

import pytest

from repro import des
from repro.platform import Platform
from repro.platform.presets import cori_spec
from repro.platform.units import GiB, MB
from repro.storage import (
    BBMode,
    InsufficientStorage,
    burst_buffer_for_allocation,
    provision_allocation,
)
from repro.storage.provisioning import DEFAULT_GRANULARITY
from repro.workflow import File


@pytest.fixture
def platform():
    env = des.Environment()
    return Platform(env, cori_spec(n_compute=1, n_bb_nodes=4))


def test_small_allocation_one_granule(platform):
    alloc = provision_allocation(platform, 5 * GiB)
    assert alloc.granted == DEFAULT_GRANULARITY
    assert alloc.granules == 1
    assert alloc.stripe_width == 1


def test_rounding_to_granularity(platform):
    alloc = provision_allocation(platform, 25 * GiB)
    assert alloc.granted == 2 * DEFAULT_GRANULARITY
    assert alloc.granules == 2
    assert alloc.stripe_width == 2  # round-robin spreads over nodes


def test_large_allocation_stripes_wide(platform):
    alloc = provision_allocation(platform, 100 * GiB)  # 5 granules, 4 nodes
    assert alloc.granules == 5
    assert alloc.stripe_width == 4


def test_exact_multiple_not_rounded(platform):
    alloc = provision_allocation(platform, 3 * DEFAULT_GRANULARITY)
    assert alloc.granted == 3 * DEFAULT_GRANULARITY


def test_custom_granularity(platform):
    alloc = provision_allocation(platform, 7 * GiB, granularity=4 * GiB)
    assert alloc.granted == 8 * GiB
    assert alloc.granules == 2


def test_over_capacity_rejected(platform):
    # 4 nodes × 6.4 TB = 25.6 TB total.
    with pytest.raises(InsufficientStorage):
        provision_allocation(platform, 30e12)


def test_validation(platform):
    with pytest.raises(ValueError):
        provision_allocation(platform, 0)
    with pytest.raises(ValueError):
        provision_allocation(platform, 1 * GiB, granularity=0)
    with pytest.raises(ValueError):
        provision_allocation(platform, 1 * GiB, bb_hosts=[])


def test_service_from_allocation_enforces_granted_capacity(platform):
    alloc = provision_allocation(platform, 5 * GiB)
    service = burst_buffer_for_allocation(platform, alloc, BBMode.STRIPED)
    assert service.capacity == alloc.granted
    assert service.bb_hosts == list(alloc.bb_hosts)
    with pytest.raises(InsufficientStorage):
        service.add_file(File("too-big", alloc.granted + 1))


def test_service_from_allocation_is_usable(platform):
    env = platform.env
    alloc = provision_allocation(platform, 40 * GiB)  # 2 granules → 2 nodes
    service = burst_buffer_for_allocation(platform, alloc, BBMode.STRIPED)
    f = File("data", 100 * MB)
    env.run(until=service.write(f, src_host="cn0"))
    assert service.contains(f)
    # Chunks went to exactly the allocation's nodes.
    disks = {
        link.name.split(":")[0]
        for flow in platform.network.completed
        for link in flow.links
        if ":ssd:write" in link.name
    }
    assert disks == set(alloc.bb_hosts)


def test_wider_stripes_more_aggregate_bandwidth(platform):
    """The paper's point about striping: more BB nodes behind an
    allocation means more aggregate disk bandwidth (when the network
    is not the bottleneck, i.e. for BB-internal staging)."""
    env = platform.env
    narrow = burst_buffer_for_allocation(
        platform, provision_allocation(platform, 5 * GiB), BBMode.STRIPED
    )
    wide = burst_buffer_for_allocation(
        platform, provision_allocation(platform, 80 * GiB), BBMode.STRIPED
    )
    assert wide.stripe_width if hasattr(wide, "stripe_width") else True
    assert len(wide.bb_hosts) > len(narrow.bb_hosts)
