"""Tests for PFS and burst buffer storage services."""

import pytest

from repro import des
from repro.platform import Platform
from repro.platform.presets import cori_spec, local_bb_host, summit_spec
from repro.platform.units import GB, MB
from repro.storage import (
    AccessDeniedError,
    BBMode,
    FileNotOnService,
    InsufficientStorage,
    OnNodeBurstBuffer,
    ParallelFileSystem,
    SharedBurstBuffer,
)
from repro.storage.base import ServiceLatencies
from repro.workflow import File


@pytest.fixture
def cori():
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=2, n_bb_nodes=2))
    return env, plat


@pytest.fixture
def summit():
    env = des.Environment()
    plat = Platform(env, summit_spec(n_compute=2))
    return env, plat


# ----------------------------------------------------------------------
# ParallelFileSystem
# ----------------------------------------------------------------------
def test_pfs_write_then_read(cori):
    env, plat = cori
    pfs = ParallelFileSystem(plat)
    f = File("data", 100 * MB)

    def proc(env):
        yield pfs.write(f, src_host="cn0")
        assert pfs.contains(f)
        yield pfs.read(f, dest_host="cn1")

    env.run(until=env.process(proc(env)))
    # write: 1 s at 100 MB/s disk; read: another 1 s
    assert env.now == pytest.approx(2.0, rel=1e-6)


def test_pfs_read_missing_file_raises(cori):
    env, plat = cori
    pfs = ParallelFileSystem(plat)
    with pytest.raises(FileNotOnService):
        pfs.read(File("ghost", 1), dest_host="cn0")


def test_pfs_add_file_is_free(cori):
    env, plat = cori
    pfs = ParallelFileSystem(plat)
    f = File("pre", 10 * MB)
    pfs.add_file(f)
    assert pfs.contains(f)
    assert env.now == 0.0
    assert pfs.used == 10 * MB


def test_pfs_latency_applied(cori):
    env, plat = cori
    pfs = ParallelFileSystem(plat, latencies=ServiceLatencies(read=0.5, write=0.25))
    f = File("data", 100 * MB)

    def proc(env):
        yield pfs.write(f, src_host="cn0")
        yield pfs.read(f, dest_host="cn0")

    env.run(until=env.process(proc(env)))
    assert env.now == pytest.approx(2.75, rel=1e-6)


def test_pfs_stream_cap(cori):
    env, plat = cori
    pfs = ParallelFileSystem(plat, max_stream_rate=10 * MB)
    f = File("data", 100 * MB)
    env.run(until=pfs.write(f, src_host="cn0"))
    assert env.now == pytest.approx(10.0, rel=1e-6)


def test_pfs_delete_frees_space(cori):
    env, plat = cori
    pfs = ParallelFileSystem(plat, capacity=100 * MB)
    f = File("data", 80 * MB)
    pfs.add_file(f)
    with pytest.raises(InsufficientStorage):
        pfs.add_file(File("more", 30 * MB))
    pfs.delete(f)
    pfs.add_file(File("more", 30 * MB))


# ----------------------------------------------------------------------
# SharedBurstBuffer — private mode
# ----------------------------------------------------------------------
def test_private_bb_write_rate(cori):
    env, plat = cori
    bb = SharedBurstBuffer(plat, ["bb0", "bb1"], BBMode.PRIVATE, owner_host="cn0")
    f = File("data", 800 * MB)
    env.run(until=bb.write(f, src_host="cn0"))
    # 800 MB/s uplink is the bottleneck
    assert env.now == pytest.approx(1.0, rel=1e-6)


def test_private_bb_denies_foreign_access(cori):
    env, plat = cori
    bb = SharedBurstBuffer(plat, ["bb0"], BBMode.PRIVATE, owner_host="cn0")
    f = File("data", MB)
    bb.add_file(f)
    with pytest.raises(AccessDeniedError):
        bb.read(f, dest_host="cn1")
    with pytest.raises(AccessDeniedError):
        bb.write(File("other", MB), src_host="cn1")


def test_private_bb_requires_owner():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    with pytest.raises(ValueError, match="owner_host"):
        SharedBurstBuffer(plat, ["bb0"], BBMode.PRIVATE)


def test_private_bb_pins_files_to_one_node(cori):
    env, plat = cori
    bb = SharedBurstBuffer(plat, ["bb0", "bb1"], BBMode.PRIVATE, owner_host="cn0")
    f1, f2 = File("a", MB), File("b", MB)

    def proc(env):
        yield bb.write(f1, src_host="cn0")
        yield bb.write(f2, src_host="cn0")

    env.run(until=env.process(proc(env)))
    # Both flows must have targeted the same BB node's disk channel.
    labels = {fl.label for fl in plat.network.completed}
    nodes = {l.split("@")[-1] for l in labels if "@" in l}
    disks = {
        lnk.name
        for fl in plat.network.completed
        for lnk in fl.links
        if ":write" in lnk.name
    }
    assert len(disks) == 1


# ----------------------------------------------------------------------
# SharedBurstBuffer — striped mode
# ----------------------------------------------------------------------
def test_striped_bb_uses_all_nodes(cori):
    env, plat = cori
    bb = SharedBurstBuffer(plat, ["bb0", "bb1"], BBMode.STRIPED)
    f = File("data", 100 * MB)
    env.run(until=bb.write(f, src_host="cn0"))
    disks = {
        lnk.name
        for fl in plat.network.completed
        for lnk in fl.links
        if ":ssd:write" in lnk.name
    }
    assert disks == {"bb0:ssd:write", "bb1:ssd:write"}


def test_striped_bb_any_host_can_access(cori):
    env, plat = cori
    bb = SharedBurstBuffer(plat, ["bb0", "bb1"], BBMode.STRIPED)
    f = File("data", 10 * MB)

    def proc(env):
        yield bb.write(f, src_host="cn0")
        yield bb.read(f, dest_host="cn1")  # allowed in striped mode

    env.run(until=env.process(proc(env)))
    assert env.now > 0


def test_striped_per_stripe_latency(cori):
    env, plat = cori
    bb = SharedBurstBuffer(
        plat, ["bb0", "bb1"], BBMode.STRIPED, per_stripe_latency=0.5
    )
    f = File("tiny", 1)  # transfer time ~0; latency dominates
    env.run(until=bb.write(f, src_host="cn0"))
    assert env.now == pytest.approx(0.5, rel=1e-3)


def test_striped_large_file_aggregates_bandwidth(cori):
    """With 2 BB nodes, the 800 MB/s uplink is shared by the two chunk
    flows, so a 800 MB file still takes ~1 s (uplink-bound)."""
    env, plat = cori
    bb = SharedBurstBuffer(plat, ["bb0", "bb1"], BBMode.STRIPED)
    f = File("big", 800 * MB)
    env.run(until=bb.write(f, src_host="cn0"))
    assert env.now == pytest.approx(1.0, rel=1e-3)


def test_bb_requires_hosts():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    with pytest.raises(ValueError):
        SharedBurstBuffer(plat, [], BBMode.STRIPED)


def test_bb_capacity_is_sum_of_nodes(cori):
    env, plat = cori
    bb = SharedBurstBuffer(plat, ["bb0", "bb1"], BBMode.STRIPED)
    assert bb.capacity == pytest.approx(2 * 6.4e12)


def test_bb_capacity_enforced(cori):
    env, plat = cori
    bb = SharedBurstBuffer(plat, ["bb0"], BBMode.STRIPED)
    with pytest.raises(InsufficientStorage):
        bb.write(File("huge", 7e12), src_host="cn0")


# ----------------------------------------------------------------------
# OnNodeBurstBuffer
# ----------------------------------------------------------------------
def test_onnode_bb_local_write_rate(summit):
    env, plat = summit
    bb = OnNodeBurstBuffer(plat, local_bb_host("cn0"))
    f = File("data", 3.3 * GB)
    env.run(until=bb.write(f, src_host="cn0"))
    # 3.3 GB/s NVMe behind a 6.5 GB/s PCIe: device-bound, ~1 s.
    assert env.now == pytest.approx(1.0, rel=1e-4)


def test_onnode_bb_remote_access_allowed_but_routed(summit):
    env, plat = summit
    bb = OnNodeBurstBuffer(plat, local_bb_host("cn0"))
    f = File("data", 10 * MB)
    bb.add_file(f)
    env.run(until=bb.read(f, dest_host="cn1"))  # via fabric + remote PCIe
    assert env.now > 0


def test_onnode_bb_capacity(summit):
    env, plat = summit
    bb = OnNodeBurstBuffer(plat, local_bb_host("cn0"))
    assert bb.capacity == pytest.approx(1.6e12)


def test_onnode_bb_faster_than_pfs(summit):
    """The headline claim: on-node BB beats the PFS for the same file."""
    env, plat = summit
    bb = OnNodeBurstBuffer(plat, local_bb_host("cn0"))
    pfs = ParallelFileSystem(plat)
    f = File("data", 1 * GB)

    t = {}

    def proc(env):
        start = env.now
        yield bb.write(f, src_host="cn0")
        t["bb"] = env.now - start
        start = env.now
        yield pfs.write(File("data2", 1 * GB), src_host="cn0")
        t["pfs"] = env.now - start

    env.run(until=env.process(proc(env)))
    assert t["bb"] < t["pfs"] / 10
