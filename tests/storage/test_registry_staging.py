"""Tests for the file registry and staging operations."""

import pytest

from repro import des
from repro.platform import Platform
from repro.platform.presets import cori_spec, local_bb_host, summit_spec
from repro.platform.units import MB
from repro.storage import (
    BBMode,
    FileNotOnService,
    FileRegistry,
    OnNodeBurstBuffer,
    ParallelFileSystem,
    SharedBurstBuffer,
    stage_file,
)
from repro.workflow import File


@pytest.fixture
def setup():
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=2, n_bb_nodes=2))
    pfs = ParallelFileSystem(plat)
    bb = SharedBurstBuffer(plat, ["bb0", "bb1"], BBMode.PRIVATE, owner_host="cn0")
    return env, plat, pfs, bb


# ----------------------------------------------------------------------
# FileRegistry
# ----------------------------------------------------------------------
def test_registry_register_and_lookup(setup):
    env, plat, pfs, bb = setup
    reg = FileRegistry()
    f = File("f", MB)
    reg.register(f, pfs)
    assert reg.lookup(f) is pfs
    assert reg.locations(f) == [pfs]
    assert reg.has(f)
    assert len(reg) == 1


def test_registry_lookup_missing_raises(setup):
    env, plat, pfs, bb = setup
    reg = FileRegistry()
    with pytest.raises(FileNotOnService):
        reg.lookup(File("ghost", 1))


def test_registry_prefer_order(setup):
    env, plat, pfs, bb = setup
    reg = FileRegistry()
    f = File("f", MB)
    reg.register(f, pfs)
    reg.register(f, bb)
    assert reg.lookup(f, prefer=[bb]) is bb
    assert reg.lookup(f, prefer=[pfs]) is pfs
    assert reg.lookup(f) is bb  # latest registered wins without preference


def test_registry_duplicate_register_is_idempotent(setup):
    env, plat, pfs, bb = setup
    reg = FileRegistry()
    f = File("f", MB)
    reg.register(f, pfs)
    reg.register(f, pfs)
    assert reg.locations(f) == [pfs]


def test_registry_unregister(setup):
    env, plat, pfs, bb = setup
    reg = FileRegistry()
    f = File("f", MB)
    reg.register(f, pfs)
    reg.unregister(f, pfs)
    assert not reg.has(f)
    reg.unregister(f, pfs)  # idempotent


def test_registry_private_bb_filtered_by_reader_host(setup):
    """A private allocation owned by cn0 is invisible to cn1's lookups."""
    env, plat, pfs, bb = setup
    reg = FileRegistry()
    f = File("f", MB)
    reg.register(f, bb)
    assert reg.lookup(f, reader_host="cn0") is bb
    with pytest.raises(FileNotOnService):
        reg.lookup(f, reader_host="cn1")
    # Adding a PFS copy makes it readable from cn1.
    reg.register(f, pfs)
    assert reg.lookup(f, reader_host="cn1") is pfs


# ----------------------------------------------------------------------
# stage_file
# ----------------------------------------------------------------------
def test_stage_pfs_to_bb(setup):
    env, plat, pfs, bb = setup
    f = File("f", 100 * MB)
    pfs.add_file(f)
    env.run(until=stage_file(f, pfs, bb))
    # PFS read channel at 100 MB/s is the bottleneck → ~1 s.
    assert env.now == pytest.approx(1.0, rel=1e-4)
    assert bb.contains(f)


def test_stage_registers_in_registry(setup):
    env, plat, pfs, bb = setup
    reg = FileRegistry()
    f = File("f", 10 * MB)
    pfs.add_file(f)
    reg.register(f, pfs)
    env.run(until=stage_file(f, pfs, bb, registry=reg))
    assert set(reg.locations(f)) == {pfs, bb}


def test_stage_missing_source_raises(setup):
    env, plat, pfs, bb = setup
    with pytest.raises(FileNotOnService):
        stage_file(File("ghost", 1), pfs, bb)


def test_stage_to_same_service_is_noop(setup):
    env, plat, pfs, bb = setup
    f = File("f", 100 * MB)
    pfs.add_file(f)
    env.run(until=stage_file(f, pfs, pfs))
    assert env.now == 0.0


def test_stage_already_present_is_noop(setup):
    env, plat, pfs, bb = setup
    f = File("f", 100 * MB)
    pfs.add_file(f)
    bb.add_file(f)
    env.run(until=stage_file(f, pfs, bb))
    assert env.now == 0.0


def test_stage_to_onnode_bb():
    env = des.Environment()
    plat = Platform(env, summit_spec())
    pfs = ParallelFileSystem(plat)
    bb = OnNodeBurstBuffer(plat, local_bb_host("cn0"))
    f = File("f", 100 * MB)
    pfs.add_file(f)
    env.run(until=stage_file(f, pfs, bb))
    # PFS read at 100 MB/s dominates → ~1 s.
    assert env.now == pytest.approx(1.0, rel=1e-3)
    assert bb.contains(f)


def test_stage_reserves_capacity(setup):
    env, plat, pfs, bb = setup
    from repro.storage import InsufficientStorage

    f = File("huge", 13e12)  # larger than both BB nodes combined (12.8 TB)
    pfs.add_file(f)
    with pytest.raises(InsufficientStorage):
        stage_file(f, pfs, bb)
