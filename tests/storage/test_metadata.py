"""Tests for metadata-server serialization in storage services."""

import pytest

from repro import des
from repro.platform import Platform
from repro.platform.presets import cori_spec
from repro.platform.units import MB
from repro.storage import BBMode, ParallelFileSystem, SharedBurstBuffer
from repro.workflow import File


def setup(metadata_time=0.5, parallelism=1):
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=1, n_bb_nodes=1))
    pfs = ParallelFileSystem(
        plat, metadata_service_time=metadata_time,
    )
    return env, plat, pfs


def test_metadata_validation():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    with pytest.raises(ValueError):
        ParallelFileSystem(plat, metadata_service_time=-1)


def test_single_op_pays_service_time():
    env, plat, pfs = setup(metadata_time=0.5)
    f = File("f", 100 * MB)
    env.run(until=pfs.write(f, src_host="cn0"))
    # 0.5 s metadata + 1 s transfer at the 100 MB/s disk.
    assert env.now == pytest.approx(1.5, rel=1e-6)


def test_concurrent_ops_queue_on_metadata():
    """Unlike per-op latency, metadata time SERIALIZES: 4 concurrent
    writes pay 4 × 0.5 s of metadata back to back."""
    env, plat, pfs = setup(metadata_time=0.5)
    files = [File(f"f{i}", 1) for i in range(4)]  # ~zero transfer time
    done = env.all_of([pfs.write(f, src_host="cn0") for f in files])
    env.run(until=done)
    assert env.now == pytest.approx(2.0, rel=1e-3)


def test_metadata_parallelism_divides_queueing():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    pfs = ParallelFileSystem(plat)
    from repro.storage.base import StorageService

    # Shared BB with a 2-wide metadata server.
    bb = SharedBurstBuffer(
        plat,
        ["bb0"],
        BBMode.STRIPED,
        metadata_service_time=0.5,
    )
    bb._metadata.capacity  # smoke: the resource exists
    files = [File(f"f{i}", 1) for i in range(4)]
    env.run(until=env.all_of([bb.write(f, src_host="cn0") for f in files]))
    serial_time = env.now

    env2 = des.Environment()
    plat2 = Platform(env2, cori_spec())
    bb2 = SharedBurstBuffer(
        plat2,
        ["bb0"],
        BBMode.STRIPED,
        metadata_service_time=0.5,
    )
    bb2._metadata = None  # disable the gate
    bb2.metadata_service_time = 0.0
    env2.run(until=env2.all_of([bb2.write(f, src_host="cn0") for f in files]))
    assert env2.now < serial_time


def test_zero_metadata_means_no_gate():
    env, plat, pfs = setup(metadata_time=0.0)
    assert pfs._metadata is None
    f = File("f", 100 * MB)
    env.run(until=pfs.write(f, src_host="cn0"))
    assert env.now == pytest.approx(1.0, rel=1e-6)


def test_metadata_gate_applies_to_reads_too():
    env, plat, pfs = setup(metadata_time=0.25)
    f = File("f", 1)
    pfs.add_file(f)
    env.run(until=pfs.read(f, dest_host="cn0"))
    assert env.now == pytest.approx(0.25, rel=1e-3)
