"""Tests for experiment infrastructure: results, calibration, CLI."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, ExperimentResult, calibrate_swarp
from repro.experiments.cli import main, run_experiment
from repro.model import observed_time
from repro.platform.presets import TABLE_I


# ----------------------------------------------------------------------
# ExperimentResult
# ----------------------------------------------------------------------
def test_result_add_row_and_column():
    r = ExperimentResult("x", "title", columns=("a", "b"))
    r.add_row(1, 2.0)
    r.add_row(3, 4.0)
    assert r.column("a") == [1, 3]
    assert r.column("b") == [2.0, 4.0]


def test_result_row_arity_checked():
    r = ExperimentResult("x", "title", columns=("a", "b"))
    with pytest.raises(ValueError):
        r.add_row(1)


def test_result_unknown_column():
    r = ExperimentResult("x", "title", columns=("a",))
    with pytest.raises(KeyError):
        r.column("zz")


def test_result_render_contains_everything():
    r = ExperimentResult("figX", "My Title", columns=("col1", "col2"))
    r.add_row("v", 1.5)
    r.notes.append("a note")
    text = r.render()
    assert "figX" in text and "My Title" in text
    assert "col1" in text and "col2" in text
    assert "1.500" in text
    assert "note: a note" in text


def test_result_render_empty_rows():
    r = ExperimentResult("figX", "t", columns=("c",))
    assert "c" in r.render()


# ----------------------------------------------------------------------
# calibrate_swarp
# ----------------------------------------------------------------------
def test_calibration_runs_for_both_systems():
    for system in ("cori", "summit"):
        cal = calibrate_swarp(system)
        assert cal.resample_flops > 0
        assert cal.combine_flops > 0
        assert 0 < cal.lambda_resample < 1
        assert 0 < cal.lambda_combine < 1


def test_calibration_is_cached():
    assert calibrate_swarp("cori") is calibrate_swarp("cori")


def test_calibration_eq4_consistency():
    """The calibrated flops must predict the observed reference time
    exactly when fed back through the forward model at the same core
    count (Eq. 4 is self-inverse at the calibration point)."""
    cal = calibrate_swarp("cori")
    speed = TABLE_I["cori"]["core_speed"]
    tc1 = cal.resample_flops / speed
    predicted = observed_time(tc1, cal.cores, cal.lambda_resample)
    assert predicted == pytest.approx(cal.observed_resample_t, rel=1e-9)


def test_calibration_per_core_count_differs():
    c32 = calibrate_swarp("cori", cores=32)
    c1 = calibrate_swarp("cori", cores=1)
    assert c32.resample_flops != c1.resample_flops


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_run_experiment_unknown_id():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("fig99")


def test_all_experiments_registered():
    assert set(ALL_EXPERIMENTS) == {
        "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "fig11", "fig13", "fig14", "policies",
    }


def test_cli_runs_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "cori" in out and "summit" in out


def test_cli_rejects_unknown(capsys):
    assert main(["nope"]) == 2


def test_cli_quick_flag(capsys):
    assert main(["fig4", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out


def test_result_json_export(tmp_path):
    r = ExperimentResult("figX", "t", columns=("a", "b"))
    r.add_row(1, 2.5)
    r.notes.append("note")
    import json

    path = tmp_path / "figX.json"
    doc = json.loads(r.to_json(path))
    assert doc == json.loads(path.read_text())
    assert doc["columns"] == ["a", "b"]
    assert doc["rows"] == [[1, 2.5]]
    assert doc["notes"] == ["note"]


def test_result_csv_export(tmp_path):
    r = ExperimentResult("figX", "t", columns=("a", "b"))
    r.add_row(1, 2.5)
    r.add_row(3, 4.5)
    path = tmp_path / "figX.csv"
    text = r.to_csv(path)
    lines = text.strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,2.5"
    assert path.read_text() == text


def test_cli_output_dir(tmp_path, capsys):
    out = tmp_path / "results"
    assert main(["table1", "--output-dir", str(out)]) == 0
    assert (out / "table1.json").exists()
    assert (out / "table1.csv").exists()


def test_cli_profile_summarizes_sweep_points(tmp_path, capsys):
    """--obs-dir --profile: every fig13 point exports a profile.json and
    the CLI tabulates the per-point dominant resources — the quick-size
    rendition of the paper's plateau explanation."""
    obs = tmp_path / "telemetry"
    assert main(
        ["fig13", "--quick", "--no-cache", "--obs-dir", str(obs), "--profile"]
    ) == 0
    out = capsys.readouterr().out
    assert "per-point critical-path profiles:" in out
    assert "dominant" in out
    point_dirs = sorted((obs / "fig13").glob("*/profile.json"))
    assert len(point_dirs) == 12  # 6 fractions x 2 systems
    # Even at quick size the staged-fraction sweep shifts dominance
    # from PFS reads toward compute.
    assert "read:pfs" in out and "compute" in out


def test_render_point_profiles_empty_dir(tmp_path):
    from repro.experiments.cli import render_point_profiles

    text = render_point_profiles(tmp_path)
    assert "no <point>/profile.json" in text
