"""Figure 13's plateau, explained mechanically by the profiler.

The paper observes that Cori's makespan stops improving once ~80% of
the 1000Genomes input is staged into the burst buffer.  The profiler
turns that observation into a statement about the critical path: below
the plateau the path is dominated by PFS reads; past it the path is
compute-bound, so staging more input cannot help.  These tests pin the
flip on the real (non-quick) fig13 configuration.
"""

import pytest

from repro.obs import Observer
from repro.profile import build_profile, diff_profiles
from repro.scenarios import run_genomes


@pytest.fixture(scope="module")
def profiles():
    out = {}
    for fraction in (0.6, 1.0):
        obs = Observer()
        scenario = run_genomes(
            system="cori",
            input_fraction=fraction,
            n_chromosomes=22,
            n_compute=8,
            emulated=False,
            observer=obs,
        )
        out[fraction] = build_profile(scenario.trace, observer=obs)
    return out


def test_below_plateau_is_pfs_bound(profiles):
    before = profiles[0.6]
    assert before.dominant_resource == "read:pfs"
    assert before.dominant_class == "pfs"
    # PFS reads are a large share of the makespan, not a sliver.
    assert before.shares["read:pfs"] > 0.3


def test_fully_staged_is_compute_bound(profiles):
    after = profiles[1.0]
    assert after.dominant_resource == "compute"
    assert after.dominant_class == "compute"
    assert after.shares["compute"] > 0.5
    assert after.shares.get("read:pfs", 0.0) < 0.05


def test_diff_explains_the_plateau(profiles):
    diff = diff_profiles(profiles[0.6], profiles[1.0])
    assert diff.dominant_flip
    assert diff.class_flip
    text = diff.explain()
    assert "critical path flipped" in text
    assert "read:pfs" in text
    assert "pfs-bound to compute-bound" in text
    assert diff.biggest_mover == "read:pfs"


def test_attribution_invariant_holds_at_scale(profiles):
    for profile in profiles.values():
        assert sum(profile.attribution.values()) == pytest.approx(
            profile.makespan, rel=1e-9
        )
