"""End-to-end tests: every figure harness runs (quick) and its rows
satisfy the paper findings it claims to regenerate."""

import math

import pytest

from repro.experiments.cli import run_experiment


@pytest.fixture(scope="module")
def results():
    """Run every experiment once in quick mode; share across tests."""
    return {
        exp: run_experiment(exp, quick=True)
        for exp in (
            "table1", "fig4", "fig5", "fig6", "fig7",
            "fig8", "fig9", "fig10", "fig11", "fig13", "fig14",
            "policies",
        )
    }


def rows_for(result, **filters):
    index = {c: i for i, c in enumerate(result.columns)}
    out = []
    for row in result.rows:
        if all(row[index[k]] == v for k, v in filters.items()):
            out.append({c: row[i] for c, i in index.items()})
    return out


def test_all_experiments_produce_rows(results):
    for exp, result in results.items():
        assert result.rows, f"{exp} produced no rows"
        assert result.render()


def test_table1_lists_both_systems(results):
    assert results["table1"].column("system") == ["cori", "summit"]


def test_fig4_onnode_fastest(results):
    r = results["fig4"]
    for fraction in (0.5, 1.0):
        by_config = {
            row["config"]: row["mean_s"]
            for row in rows_for(r, fraction=fraction)
        }
        assert by_config["on-node"] < by_config["private"] < by_config["striped"]


def test_fig4_linear_growth(results):
    r = results["fig4"]
    private = [row["mean_s"] for row in rows_for(r, config="private")]
    assert private == sorted(private)


def test_fig5_bb_intermediates_beat_pfs_for_private(results):
    r = results["fig5"]
    bb = rows_for(r, config="private", intermediates="bb")
    pfs = rows_for(r, config="private", intermediates="pfs")
    for b, p in zip(bb, pfs):
        assert b["resample_s"] < p["resample_s"]


def test_fig6_resample_plateau(results):
    r = results["fig6"]
    rows = rows_for(r, config="private")
    by_cores = {row["cores"]: row["resample_s"] for row in rows}
    assert by_cores[8] < by_cores[1] / 2
    assert by_cores[32] > 0.85 * by_cores[8]


def test_fig6_combine_flat(results):
    r = results["fig6"]
    rows = rows_for(r, config="private")
    times = [row["combine_s"] for row in rows]
    assert max(times) / min(times) < 1.2


def test_fig7_cori_slows_summit_flat(results):
    r = results["fig7"]
    for config, limit in (("private", 1.4), ("on-node", 1.30)):
        rows = rows_for(r, config=config)
        by_n = {row["pipelines"]: row["resample_s"] for row in rows}
        slowdown = by_n[max(by_n)] / by_n[1]
        if config == "private":
            assert slowdown > limit
        else:
            assert slowdown < limit


def test_fig8_onnode_most_stable(results):
    r = results["fig8"]
    cv = {
        (row["config"], row["pipelines"]): row["cv"] for row in rows_for(r)
    }
    configs = {c for c, _ in cv}
    for n in {n for _, n in cv}:
        assert cv[("on-node", n)] <= cv[("striped", n)]


def test_fig9_bandwidth_below_peak(results):
    r = results["fig9"]
    for row in rows_for(r):
        assert 0 < row["peak_fraction"] < 1.0


def test_fig9_onnode_highest_bandwidth(results):
    r = results["fig9"]
    means = {row["config"]: row["mean_MBps"] for row in rows_for(r)}
    assert means["on-node"] > means["private"]


def test_fig10_errors_in_papers_regime(results):
    """Mean relative errors should sit near the paper's (≤ ~2× theirs)."""
    r = results["fig10"]
    for config, paper_error in (("private", 0.056), ("striped", 0.128), ("on-node", 0.065)):
        errors = [row["rel_error"] for row in rows_for(r, config=config)]
        mean_error = sum(errors) / len(errors)
        assert mean_error < 2.0 * paper_error + 0.02, (
            f"{config}: {mean_error:.1%} too far above the paper's {paper_error:.1%}"
        )


def test_fig10_striped_underestimated(results):
    """Paper: the simulator underestimates striped makespans."""
    r = results["fig10"]
    rows = rows_for(r, config="striped")
    assert all(row["simulated_s"] <= row["measured_s"] for row in rows)


def test_fig11_trends_agree(results):
    r = results["fig11"]
    for config in ("private", "striped", "on-node"):
        rows = rows_for(r, config=config)
        measured = [row["measured_s"] for row in rows]
        simulated = [row["simulated_s"] for row in rows]
        assert measured == sorted(measured)
        assert simulated == sorted(simulated)


def test_fig13_shapes(results):
    r = results["fig13"]
    cori = r.column("cori_s")
    summit = r.column("summit_s")
    assert cori == sorted(cori, reverse=True)
    assert summit == sorted(summit, reverse=True)
    assert all(s < c for s, c in zip(summit, cori))


def test_fig14_speedup_reaches_above_one(results):
    r = results["fig14"]
    assert r.column("cori_speedup")[-1] > 1.2
    assert r.column("summit_speedup")[-1] > r.column("cori_speedup")[-1]


def test_fig14_reference_points_present(results):
    r = results["fig14"]
    refs = [v for v in r.column("reference") if not math.isnan(v)]
    assert refs, "no reference points generated"


def test_policies_backfill_beats_fifo(results):
    rows = rows_for(results["policies"])
    by_policy = {r["policy"]: r for r in rows}
    assert set(by_policy) == {
        "fifo", "easy-backfill", "conservative-backfill", "plan",
    }
    fifo = by_policy["fifo"]
    assert fifo["wait_bb_s"] > 0
    for policy in ("easy-backfill", "conservative-backfill", "plan"):
        row = by_policy[policy]
        assert row["makespan_s"] <= fifo["makespan_s"]
        assert row["wait_bb_s"] < fifo["wait_bb_s"]
        # Reordering never changes the work itself.
        assert row["busy_s"] == fifo["busy_s"]
