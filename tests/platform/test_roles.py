"""Tests for explicit host roles and legacy name-convention inference."""

import warnings

import pytest

from repro.platform import (
    DiskSpec,
    HostRole,
    HostSpec,
    PlatformSpec,
    infer_host_roles,
    infer_role,
    platform_from_json,
    platform_to_json,
)
from repro.platform.presets import cori_spec, summit_spec


def host(name, **kwargs):
    return HostSpec(name=name, cores=4, core_speed=1e9, **kwargs)


# ----------------------------------------------------------------------
# infer_role: the legacy naming contract, now in one place
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,expected",
    [
        ("pfs", HostRole.PFS),
        ("cn0", HostRole.COMPUTE),
        ("cn12", HostRole.COMPUTE),
        ("bb0", HostRole.SHARED_BB),
        ("cn0-bb", HostRole.LOCAL_BB),
        ("login1", None),
    ],
)
def test_infer_role(name, expected):
    assert infer_role(name) is expected


# ----------------------------------------------------------------------
# HostSpec role field
# ----------------------------------------------------------------------
def test_role_accepts_strings():
    assert host("n0", role="compute").role is HostRole.COMPUTE


def test_attached_to_requires_local_bb_role():
    with pytest.raises(ValueError, match="attached_to is only meaningful"):
        host("n0", role=HostRole.COMPUTE, attached_to="n1")


def test_attached_to_must_reference_existing_host():
    with pytest.raises(ValueError, match="unknown host"):
        PlatformSpec(
            "p",
            hosts=[host("buf", role=HostRole.LOCAL_BB, attached_to="ghost")],
        )


def test_hosts_with_role_and_has_roles():
    spec = PlatformSpec(
        "p",
        hosts=[
            host("worker", role="compute"),
            host("store", role="pfs"),
            host("nameless"),
        ],
    )
    assert [h.name for h in spec.hosts_with_role("compute")] == ["worker"]
    assert not spec.has_roles


# ----------------------------------------------------------------------
# infer_host_roles: the legacy upgrade path
# ----------------------------------------------------------------------
def test_infer_host_roles_fills_and_warns():
    spec = PlatformSpec("p", hosts=[host("cn0"), host("cn0-bb"), host("pfs")])
    with pytest.warns(DeprecationWarning, match="host-name conventions"):
        upgraded = infer_host_roles(spec)
    assert upgraded.has_roles
    assert upgraded.host("cn0").role is HostRole.COMPUTE
    local = upgraded.host("cn0-bb")
    assert local.role is HostRole.LOCAL_BB
    assert local.attached_to == "cn0"


def test_infer_host_roles_noop_when_explicit():
    spec = PlatformSpec("p", hosts=[host("anything", role="compute")])
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert infer_host_roles(spec) is spec


def test_infer_host_roles_rejects_uninferrable_names():
    spec = PlatformSpec("p", hosts=[host("login1")])
    with pytest.raises(ValueError, match="no role and none can be inferred"):
        infer_host_roles(spec)


# ----------------------------------------------------------------------
# Presets and serialization
# ----------------------------------------------------------------------
def test_presets_declare_explicit_roles():
    for spec in (cori_spec(n_compute=2, n_bb_nodes=1), summit_spec(n_compute=2)):
        assert spec.has_roles, spec.name
    summit = summit_spec(n_compute=1)
    assert summit.host("cn0-bb").attached_to == "cn0"


def test_roles_round_trip_through_json(tmp_path):
    spec = PlatformSpec(
        "p",
        hosts=[
            host("worker", role="compute"),
            HostSpec(
                name="buf",
                cores=1,
                core_speed=1e9,
                role=HostRole.LOCAL_BB,
                attached_to="worker",
                disks=(DiskSpec("nvme", 1e9, 1e9),),
            ),
            host("legacy"),  # role=None must survive a round-trip too
        ],
    )
    path = tmp_path / "platform.json"
    platform_to_json(spec, path)
    loaded = platform_from_json(path)
    assert loaded.host("worker").role is HostRole.COMPUTE
    assert loaded.host("buf").role is HostRole.LOCAL_BB
    assert loaded.host("buf").attached_to == "worker"
    assert loaded.host("legacy").role is None
