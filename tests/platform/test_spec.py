"""Tests for platform spec dataclasses and validation."""

import pytest

from repro.platform import DiskSpec, HostSpec, LinkSpec, PlatformSpec, RouteSpec


def make_host(name="h", **kw):
    defaults = dict(cores=4, core_speed=1e9)
    defaults.update(kw)
    return HostSpec(name=name, **defaults)


# ----------------------------------------------------------------------
# DiskSpec
# ----------------------------------------------------------------------
def test_disk_spec_valid():
    d = DiskSpec("ssd", read_bandwidth=1e9, write_bandwidth=5e8, capacity=1e12)
    assert d.read_bandwidth == 1e9


def test_disk_spec_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        DiskSpec("ssd", read_bandwidth=0, write_bandwidth=1)
    with pytest.raises(ValueError):
        DiskSpec("ssd", read_bandwidth=1, write_bandwidth=-1)


def test_disk_spec_rejects_bad_capacity():
    with pytest.raises(ValueError):
        DiskSpec("ssd", read_bandwidth=1, write_bandwidth=1, capacity=0)


def test_disk_spec_rejects_empty_name():
    with pytest.raises(ValueError):
        DiskSpec("", read_bandwidth=1, write_bandwidth=1)


# ----------------------------------------------------------------------
# HostSpec
# ----------------------------------------------------------------------
def test_host_spec_aggregate_speed():
    h = make_host(cores=8, core_speed=2e9)
    assert h.speed == 16e9


def test_host_spec_validation():
    with pytest.raises(ValueError):
        make_host(cores=0)
    with pytest.raises(ValueError):
        make_host(core_speed=0)
    with pytest.raises(ValueError):
        make_host(ram=0)
    with pytest.raises(ValueError):
        HostSpec(name="", cores=1, core_speed=1)


def test_host_spec_duplicate_disks_rejected():
    d = DiskSpec("ssd", read_bandwidth=1, write_bandwidth=1)
    with pytest.raises(ValueError, match="duplicate disk"):
        make_host(disks=(d, d))


def test_host_disk_lookup():
    d = DiskSpec("ssd", read_bandwidth=1, write_bandwidth=1)
    h = make_host(disks=(d,))
    assert h.disk("ssd") is d
    with pytest.raises(KeyError):
        h.disk("nope")


# ----------------------------------------------------------------------
# RouteSpec / PlatformSpec
# ----------------------------------------------------------------------
def test_route_spec_rejects_self_route():
    with pytest.raises(ValueError):
        RouteSpec("a", "a", ["l"])


def test_platform_spec_valid():
    spec = PlatformSpec(
        name="p",
        hosts=(make_host("a"), make_host("b")),
        links=(LinkSpec("l", bandwidth=1.0),),
        routes=(RouteSpec("a", "b", ["l"]),),
    )
    assert spec.host("a").name == "a"
    assert spec.link("l").bandwidth == 1.0
    assert spec.total_cores == 8


def test_platform_spec_duplicate_host_names():
    with pytest.raises(ValueError, match="duplicate host"):
        PlatformSpec(name="p", hosts=(make_host("a"), make_host("a")))


def test_platform_spec_duplicate_link_names():
    with pytest.raises(ValueError, match="duplicate link"):
        PlatformSpec(
            name="p",
            hosts=(make_host("a"),),
            links=(LinkSpec("l", bandwidth=1), LinkSpec("l", bandwidth=2)),
        )


def test_platform_spec_route_unknown_host():
    with pytest.raises(ValueError, match="unknown host"):
        PlatformSpec(
            name="p",
            hosts=(make_host("a"),),
            links=(LinkSpec("l", bandwidth=1),),
            routes=(RouteSpec("a", "ghost", ["l"]),),
        )


def test_platform_spec_route_unknown_link():
    with pytest.raises(ValueError, match="unknown link"):
        PlatformSpec(
            name="p",
            hosts=(make_host("a"), make_host("b")),
            routes=(RouteSpec("a", "b", ["ghost"]),),
        )


def test_platform_lookup_errors():
    spec = PlatformSpec(name="p", hosts=(make_host("a"),))
    with pytest.raises(KeyError):
        spec.host("zz")
    with pytest.raises(KeyError):
        spec.link("zz")


def test_hosts_matching_prefix():
    spec = PlatformSpec(
        name="p", hosts=(make_host("cn0"), make_host("cn1"), make_host("pfs"))
    )
    assert [h.name for h in spec.hosts_matching("cn")] == ["cn0", "cn1"]
