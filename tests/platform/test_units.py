"""Tests for unit constants and parsing/formatting helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.platform.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    TB,
    TiB,
    format_bandwidth,
    format_size,
    parse_size,
)


def test_decimal_constants():
    assert KB == 1e3 and MB == 1e6 and GB == 1e9 and TB == 1e12


def test_binary_constants():
    assert KiB == 1024
    assert MiB == 1024**2
    assert GiB == 1024**3
    assert TiB == 1024**4


@pytest.mark.parametrize(
    "text,expected",
    [
        ("32 MiB", 32 * MiB),
        ("32MiB", 32 * MiB),
        ("6.5GB", 6.5 * GB),
        ("800 MB", 800 * MB),
        ("1.6 TB", 1.6 * TB),
        ("100", 100.0),
        ("512B", 512.0),
        ("2 KiB", 2 * KiB),
        ("1 tib", TiB),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == pytest.approx(expected)


def test_parse_size_rejects_missing_magnitude():
    with pytest.raises(ValueError):
        parse_size("MiB")


def test_parse_size_rejects_garbage():
    with pytest.raises(ValueError):
        parse_size("lots of bytes")


@pytest.mark.parametrize("text", ["-1", "-32 MiB", "-0.5GB"])
def test_parse_size_rejects_negative(text):
    with pytest.raises(ValueError, match="negative"):
        parse_size(text)


@pytest.mark.parametrize("text", ["nan", "NaN MiB", "nan GB"])
def test_parse_size_rejects_nan(text):
    with pytest.raises(ValueError, match="not a number"):
        parse_size(text)


@pytest.mark.parametrize("text", ["inf", "infinity", "inf GiB", "-inf"])
def test_parse_size_rejects_infinite(text):
    with pytest.raises(ValueError):
        parse_size(text)


def test_parse_size_accepts_zero():
    assert parse_size("0") == 0.0
    assert parse_size("0 MiB") == 0.0


def test_format_size():
    assert format_size(512) == "512.0 B"
    assert format_size(32 * MiB) == "32.0 MiB"
    assert format_size(1.5 * GiB) == "1.5 GiB"
    assert format_size(3 * TiB) == "3.0 TiB"


def test_format_bandwidth():
    assert format_bandwidth(800 * MB) == "800.0 MB/s"
    assert format_bandwidth(6.5 * GB) == "6.5 GB/s"
    assert format_bandwidth(100) == "100.0 B/s"


@given(st.floats(min_value=1.0, max_value=1e14))
def test_format_then_parse_size_roundtrip(n):
    """format_size output is always parseable, within rounding error."""
    assert parse_size(format_size(n)) == pytest.approx(n, rel=0.05)
