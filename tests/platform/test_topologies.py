"""Tests for the fat-tree and dragonfly topology generators."""

import pytest

from repro import des
from repro.platform import Platform
from repro.platform.topologies import NodeConfig, build_dragonfly, build_fat_tree
from repro.platform.units import GB


# ----------------------------------------------------------------------
# Fat-tree
# ----------------------------------------------------------------------
def test_fat_tree_structure():
    spec = build_fat_tree(pods=2, nodes_per_pod=3)
    compute = spec.hosts_matching("cn")
    assert len(compute) == 6
    assert spec.host("pfs")
    link_names = {l.name for l in spec.links}
    assert {"pod0-up", "pod1-up", "core-trunk"} <= link_names


def test_fat_tree_same_pod_route_stays_local():
    spec = build_fat_tree(pods=2, nodes_per_pod=3)
    route = next(r for r in spec.routes if (r.src, r.dst) == ("cn0", "cn1"))
    assert "core-trunk" not in route.link_names


def test_fat_tree_cross_pod_route_uses_trunk():
    spec = build_fat_tree(pods=2, nodes_per_pod=3)
    route = next(r for r in spec.routes if (r.src, r.dst) == ("cn0", "cn3"))
    assert "core-trunk" in route.link_names
    assert "pod0-up" in route.link_names and "pod1-up" in route.link_names


def test_fat_tree_full_bisection_has_no_trunk_bottleneck():
    """At oversubscription 1, simultaneous cross-pod pairs all get full
    link bandwidth."""
    spec = build_fat_tree(pods=2, nodes_per_pod=2, link_bandwidth=10 * GB)
    env = des.Environment()
    plat = Platform(env, spec)
    # cn0→cn2 and cn1→cn3 simultaneously, 10 GB each.
    done = env.all_of(
        [
            plat.network.transfer(10 * GB, list(plat.route("cn0", "cn2"))),
            plat.network.transfer(10 * GB, list(plat.route("cn1", "cn3"))),
        ]
    )
    env.run(until=done)
    assert env.now == pytest.approx(1.0, rel=1e-3)


def test_fat_tree_oversubscription_bottlenecks_trunk():
    spec = build_fat_tree(
        pods=2, nodes_per_pod=2, link_bandwidth=10 * GB, core_oversubscription=2.0
    )
    env = des.Environment()
    plat = Platform(env, spec)
    done = env.all_of(
        [
            plat.network.transfer(10 * GB, list(plat.route("cn0", "cn2"))),
            plat.network.transfer(10 * GB, list(plat.route("cn1", "cn3"))),
        ]
    )
    env.run(until=done)
    # Trunk = 40/2 = 20 GB/s for 2×10 GB/s demand... that still fits;
    # with 2 flows of 10 GB each sharing 20 GB/s trunk they both finish
    # in 1 s; raise oversubscription effect by 4 flows instead.
    assert env.now >= 1.0

    spec4 = build_fat_tree(
        pods=2, nodes_per_pod=4, link_bandwidth=10 * GB, core_oversubscription=4.0
    )
    env4 = des.Environment()
    plat4 = Platform(env4, spec4)
    done4 = env4.all_of(
        [
            plat4.network.transfer(
                10 * GB, list(plat4.route(f"cn{i}", f"cn{i + 4}"))
            )
            for i in range(4)
        ]
    )
    env4.run(until=done4)
    # Trunk = 80/4 = 20 GB/s shared by 4 flows → 5 GB/s each → 2 s.
    assert env4.now == pytest.approx(2.0, rel=1e-3)


def test_fat_tree_validation():
    with pytest.raises(ValueError):
        build_fat_tree(pods=0)
    with pytest.raises(ValueError):
        build_fat_tree(core_oversubscription=0.5)


# ----------------------------------------------------------------------
# Dragonfly
# ----------------------------------------------------------------------
def test_dragonfly_structure():
    spec = build_dragonfly(groups=3, nodes_per_group=2)
    assert len(spec.hosts_matching("cn")) == 6
    link_names = {l.name for l in spec.links}
    assert {"g0-rail", "g1-rail", "g2-rail"} <= link_names
    assert {"global-0-1", "global-0-2", "global-1-2"} <= link_names


def test_dragonfly_intra_group_route():
    spec = build_dragonfly(groups=2, nodes_per_group=2)
    route = next(r for r in spec.routes if (r.src, r.dst) == ("cn0", "cn1"))
    assert list(route.link_names) == ["g0-rail"]


def test_dragonfly_cross_group_uses_global_link():
    spec = build_dragonfly(groups=2, nodes_per_group=2)
    route = next(r for r in spec.routes if (r.src, r.dst) == ("cn0", "cn2"))
    assert "global-0-1" in route.link_names


def test_dragonfly_global_links_are_the_bottleneck():
    """Two cross-group flows share ONE global link (minimal routing) and
    run at half rate, while intra-group flows stream at full rate."""
    spec = build_dragonfly(
        groups=2, nodes_per_group=2,
        local_bandwidth=10 * GB, global_bandwidth=5 * GB,
    )
    env = des.Environment()
    plat = Platform(env, spec)
    done = env.all_of(
        [
            plat.network.transfer(5 * GB, list(plat.route("cn0", "cn2"))),
            plat.network.transfer(5 * GB, list(plat.route("cn1", "cn3"))),
        ]
    )
    env.run(until=done)
    # 2 × 5 GB over one 5 GB/s global link → 2 s.
    assert env.now == pytest.approx(2.0, rel=1e-3)


def test_dragonfly_pfs_reached_through_group_zero():
    spec = build_dragonfly(groups=3, nodes_per_group=2)
    route = next(r for r in spec.routes if (r.src, r.dst) == ("cn4", "pfs"))
    assert "global-0-2" in route.link_names
    assert "g0-rail" in route.link_names


def test_dragonfly_validation():
    with pytest.raises(ValueError):
        build_dragonfly(groups=1)
    with pytest.raises(ValueError):
        build_dragonfly(groups=2, nodes_per_group=0)


def test_topologies_run_workflows():
    """Both fabrics execute a real workflow end to end."""
    from repro.compute import ComputeService
    from repro.storage import ParallelFileSystem
    from repro.wms import RoundRobinScheduler, WorkflowEngine
    from repro.workflow.synthetic import make_fork_join

    for spec in (build_fat_tree(2, 2), build_dragonfly(2, 2)):
        env = des.Environment()
        plat = Platform(env, spec)
        hosts = [h.name for h in spec.hosts_matching("cn")]
        engine = WorkflowEngine(
            plat,
            make_fork_join(6),
            ComputeService(plat, hosts),
            ParallelFileSystem(plat),
            host_assignment=RoundRobinScheduler(),
        )
        trace = engine.run()
        assert len(trace.records) == 8


def test_node_config_applied():
    spec = build_fat_tree(1, 2, node=NodeConfig(cores=64, core_speed=1e9))
    assert spec.host("cn0").cores == 64
    assert spec.host("cn0").core_speed == 1e9
