"""Tests for Table I presets, the runtime Platform, and serialization."""

import pytest

from repro import des
from repro.platform import Platform, platform_from_json, platform_to_json
from repro.platform.presets import (
    BB_DISK,
    PFS_DISK,
    PFS_HOST,
    TABLE_I,
    cori_spec,
    local_bb_host,
    summit_spec,
)
from repro.platform.units import GB, GFLOPS, MB


# ----------------------------------------------------------------------
# Table I constants
# ----------------------------------------------------------------------
def test_table1_cori_values_match_paper():
    cori = TABLE_I["cori"]
    assert cori["core_speed"] == pytest.approx(36.80 * GFLOPS)
    assert cori["bb_network_bandwidth"] == pytest.approx(800 * MB)
    assert cori["bb_disk_bandwidth"] == pytest.approx(950 * MB)
    assert cori["pfs_network_bandwidth"] == pytest.approx(1.0 * GB)
    assert cori["pfs_disk_bandwidth"] == pytest.approx(100 * MB)


def test_table1_summit_values_match_paper():
    summit = TABLE_I["summit"]
    assert summit["core_speed"] == pytest.approx(49.12 * GFLOPS)
    assert summit["bb_network_bandwidth"] == pytest.approx(6.5 * GB)
    assert summit["bb_disk_bandwidth"] == pytest.approx(3.3 * GB)
    assert summit["pfs_network_bandwidth"] == pytest.approx(2.1 * GB)
    assert summit["pfs_disk_bandwidth"] == pytest.approx(100 * MB)


# ----------------------------------------------------------------------
# Preset topology
# ----------------------------------------------------------------------
def test_cori_spec_structure():
    spec = cori_spec(n_compute=2, n_bb_nodes=3)
    names = {h.name for h in spec.hosts}
    assert {"cn0", "cn1", "bb0", "bb1", "bb2", PFS_HOST} <= names
    assert spec.host("cn0").cores == 32
    assert spec.host("bb0").disk(BB_DISK).capacity == pytest.approx(6.4e12)
    assert spec.host(PFS_HOST).disk(PFS_DISK).read_bandwidth == pytest.approx(100 * MB)


def test_cori_routes_exist():
    spec = cori_spec(n_compute=2, n_bb_nodes=2)
    pairs = {(r.src, r.dst) for r in spec.routes}
    for cn in ("cn0", "cn1"):
        for bb in ("bb0", "bb1"):
            assert (cn, bb) in pairs
        assert (cn, PFS_HOST) in pairs


def test_summit_spec_structure():
    spec = summit_spec(n_compute=2)
    names = {h.name for h in spec.hosts}
    assert {"cn0", "cn1", local_bb_host("cn0"), local_bb_host("cn1"), PFS_HOST} <= names
    bb = spec.host(local_bb_host("cn0")).disk(BB_DISK)
    assert bb.read_bandwidth == pytest.approx(3.3 * GB)
    assert bb.capacity == pytest.approx(1.6e12)


def test_summit_cross_node_bb_routes():
    spec = summit_spec(n_compute=2)
    pairs = {(r.src, r.dst) for r in spec.routes}
    assert ("cn0", local_bb_host("cn1")) in pairs
    assert ("cn1", local_bb_host("cn0")) in pairs


# ----------------------------------------------------------------------
# Runtime platform + end-to-end transfers at Table I rates
# ----------------------------------------------------------------------
def test_cori_bb_write_rate_is_network_limited():
    """CN→BB writes cross an 800 MB/s uplink and a 950 MB/s SSD: the
    uplink is the bottleneck, so 800 MB moves in ~1 s."""
    env = des.Environment()
    plat = Platform(env, cori_spec())
    done = plat.write_to_disk(800 * MB, "bb0", BB_DISK, src_host="cn0")
    flow = env.run(until=done)
    assert env.now == pytest.approx(1.0, rel=1e-6)
    assert flow.achieved_bandwidth == pytest.approx(800 * MB, rel=1e-6)


def test_cori_pfs_write_rate_is_disk_limited():
    """CN→PFS writes cross a 1 GB/s uplink into a 100 MB/s disk."""
    env = des.Environment()
    plat = Platform(env, cori_spec())
    done = plat.write_to_disk(100 * MB, PFS_HOST, PFS_DISK, src_host="cn0")
    env.run(until=done)
    assert env.now == pytest.approx(1.0, rel=1e-6)


def test_summit_local_bb_read_rate():
    """On-node reads cross the 6.5 GB/s PCIe and the 3.3 GB/s device."""
    env = des.Environment()
    plat = Platform(env, summit_spec())
    done = plat.read_from_disk(
        3.3 * GB, local_bb_host("cn0"), BB_DISK, dest_host="cn0"
    )
    env.run(until=done)
    assert env.now == pytest.approx(1.0, rel=1e-4)


def test_pfs_disk_shared_across_nodes():
    """Two nodes writing to the PFS at once halve each other's rate."""
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=2))
    d0 = plat.write_to_disk(100 * MB, PFS_HOST, PFS_DISK, src_host="cn0")
    d1 = plat.write_to_disk(100 * MB, PFS_HOST, PFS_DISK, src_host="cn1")
    env.run(until=env.all_of([d0, d1]))
    assert env.now == pytest.approx(2.0, rel=1e-6)


def test_bb_uplinks_are_per_node():
    """Two nodes writing to the (multi-node) BB do NOT contend on their
    private uplinks; each still moves at 800 MB/s to separate BB nodes."""
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=2, n_bb_nodes=2))
    d0 = plat.write_to_disk(800 * MB, "bb0", BB_DISK, src_host="cn0")
    d1 = plat.write_to_disk(800 * MB, "bb1", BB_DISK, src_host="cn1")
    env.run(until=env.all_of([d0, d1]))
    assert env.now == pytest.approx(1.0, rel=1e-6)


def test_disk_to_disk_transfer():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    done = plat.transfer_between_disks(
        100 * MB, (PFS_HOST, PFS_DISK), ("bb0", BB_DISK)
    )
    env.run(until=done)
    # PFS read channel 100 MB/s is the bottleneck.
    assert env.now == pytest.approx(1.0, rel=1e-4)


def test_runtime_lookup_errors():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    with pytest.raises(KeyError):
        plat.host("ghost")
    with pytest.raises(KeyError):
        plat.disk_read_link("cn0", "ghost")


# ----------------------------------------------------------------------
# Serialization round-trip
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory", [cori_spec, summit_spec])
def test_platform_json_roundtrip(factory, tmp_path):
    spec = factory(n_compute=2)
    path = tmp_path / "platform.json"
    platform_to_json(spec, path)
    loaded = platform_from_json(path)
    assert loaded == spec


def test_platform_json_from_string():
    spec = cori_spec()
    text = platform_to_json(spec)
    assert platform_from_json(text) == spec


def test_platform_json_missing_fields_rejected():
    with pytest.raises(ValueError):
        platform_from_json('{"hosts": []}')


def test_loaded_platform_is_runnable(tmp_path):
    env = des.Environment()
    path = tmp_path / "p.json"
    platform_to_json(summit_spec(), path)
    plat = Platform(env, platform_from_json(path))
    done = plat.write_to_disk(
        1 * GB, local_bb_host("cn0"), BB_DISK, src_host="cn0"
    )
    env.run(until=done)
    assert env.now > 0
