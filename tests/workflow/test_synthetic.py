"""Tests for the synthetic workflow generators."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workflow.synthetic import make_chain, make_fork_join, make_random_dag


# ----------------------------------------------------------------------
# make_chain
# ----------------------------------------------------------------------
def test_chain_structure():
    wf = make_chain(5)
    assert len(wf) == 5
    order = [t.name for t in wf.topological_order()]
    assert order == [f"stage_{i}" for i in range(5)]
    for i in range(4):
        assert [t.name for t in wf.children(f"stage_{i}")] == [f"stage_{i+1}"]


def test_chain_single_task():
    wf = make_chain(1)
    assert len(wf) == 1
    assert len(wf.external_input_files()) == 1


def test_chain_validation():
    with pytest.raises(ValueError):
        make_chain(0)


def test_chain_critical_path_is_total():
    wf = make_chain(4, task_seconds=10.0)
    assert wf.critical_path_flops() == pytest.approx(wf.total_flops)


# ----------------------------------------------------------------------
# make_fork_join
# ----------------------------------------------------------------------
def test_fork_join_structure():
    wf = make_fork_join(8)
    assert len(wf) == 10  # source + 8 workers + sink
    assert {t.name for t in wf.children("source")} == {
        f"worker_{i}" for i in range(8)
    }
    assert {t.name for t in wf.parents("sink")} == {
        f"worker_{i}" for i in range(8)
    }


def test_fork_join_levels():
    wf = make_fork_join(4)
    levels = wf.levels()
    assert [len(level) for level in levels] == [1, 4, 1]


def test_fork_join_validation():
    with pytest.raises(ValueError):
        make_fork_join(0)


# ----------------------------------------------------------------------
# make_random_dag
# ----------------------------------------------------------------------
def test_random_dag_deterministic_in_seed():
    a = make_random_dag(20, seed=7)
    b = make_random_dag(20, seed=7)
    assert set(a.tasks) == set(b.tasks)
    assert list(a.graph.edges) == list(b.graph.edges)
    assert a.data_footprint == b.data_footprint


def test_random_dag_seeds_differ():
    a = make_random_dag(20, seed=1)
    b = make_random_dag(20, seed=2)
    assert list(a.graph.edges) != list(b.graph.edges)


def test_random_dag_validation():
    with pytest.raises(ValueError):
        make_random_dag(0, seed=1)
    with pytest.raises(ValueError):
        make_random_dag(5, seed=1, edge_probability=1.5)


@given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_random_dag_always_valid(n, seed):
    """Any seed yields an acyclic, single-producer workflow (Workflow's
    constructor enforces the invariants; this checks none ever trip)."""
    wf = make_random_dag(n, seed=seed)
    assert len(wf) == n
    assert nx.is_directed_acyclic_graph(wf.graph)
    # Every task beyond the first has at least one parent.
    for i in range(1, n):
        assert wf.parents(f"task_{i}")


@given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_random_dag_executes(n, seed):
    """Random DAGs actually run to completion on a platform."""
    from repro import des
    from repro.compute import ComputeService
    from repro.platform import Platform
    from repro.platform.presets import cori_spec
    from repro.storage import ParallelFileSystem
    from repro.wms import WorkflowEngine

    wf = make_random_dag(n, seed=seed)
    env = des.Environment()
    plat = Platform(env, cori_spec())
    engine = WorkflowEngine(
        plat,
        wf,
        ComputeService(plat, ["cn0"]),
        ParallelFileSystem(plat),
        host_assignment=lambda t: "cn0",
    )
    trace = engine.run()
    assert len(trace.records) == n
