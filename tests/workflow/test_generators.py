"""Tests for the SWarp and 1000Genomes workflow generators."""

import pytest

from repro.platform.units import MiB
from repro.workflow import TaskCategory, calibration as cal
from repro.workflow.genomes import make_1000genomes
from repro.workflow.swarp import make_swarp


# ----------------------------------------------------------------------
# SWarp
# ----------------------------------------------------------------------
def test_swarp_single_pipeline_structure():
    wf = make_swarp(n_pipelines=1)
    assert len(wf) == 3  # stage_in + resample + combine
    assert wf.task("stage_in").category == TaskCategory.STAGE_IN
    assert [t.name for t in wf.parents("resample_0")] == ["stage_in"]
    assert [t.name for t in wf.parents("combine_0")] == ["resample_0"]


def test_swarp_pipeline_count():
    wf = make_swarp(n_pipelines=8)
    assert len(wf) == 1 + 2 * 8
    assert len([t for t in wf if t.group == "resample"]) == 8
    assert len([t for t in wf if t.group == "combine"]) == 8


def test_swarp_input_files_match_paper():
    """16 images of 32 MiB + 16 weight maps of 16 MiB per pipeline."""
    wf = make_swarp(n_pipelines=1, include_stage_in=False)
    inputs = wf.external_input_files()
    images = [f for f in inputs if "input_" in f.name]
    weights = [f for f in inputs if "weight_" in f.name]
    assert len(images) == 16 and len(weights) == 16
    assert all(f.size == 32 * MiB for f in images)
    assert all(f.size == 16 * MiB for f in weights)


def test_swarp_pipeline_input_volume():
    """768 MiB of external input per pipeline (16×32 + 16×16 MiB)."""
    wf = make_swarp(n_pipelines=1, include_stage_in=False)
    total = sum(f.size for f in wf.external_input_files())
    assert total == pytest.approx(768 * MiB)


def test_swarp_pipelines_are_independent():
    wf = make_swarp(n_pipelines=4, include_stage_in=False)
    # No cross-pipeline edges: resample_i only feeds combine_i.
    for i in range(4):
        assert [t.name for t in wf.children(f"resample_{i}")] == [f"combine_{i}"]
        assert wf.parents(f"resample_{i}") == []


def test_swarp_stage_in_feeds_every_pipeline():
    wf = make_swarp(n_pipelines=4)
    kids = {t.name for t in wf.children("stage_in")}
    assert kids == {f"resample_{i}" for i in range(4)}


def test_swarp_cores_parameter():
    wf = make_swarp(n_pipelines=2, cores_per_task=8)
    assert wf.task("resample_0").cores == 8
    assert wf.task("combine_1").cores == 8
    assert wf.task("stage_in").cores == 1  # stage-in is always sequential


def test_swarp_flops_follow_eq4():
    """Task flops must encode T_c(1) = p (1 − λ_io) T(p) at Cori speed."""
    from repro.platform.presets import TABLE_I

    wf = make_swarp(n_pipelines=1)
    expected_tc1 = 32 * (1 - cal.RESAMPLE_LAMBDA_IO) * cal.RESAMPLE_OBSERVED_T32
    assert wf.task("resample_0").flops == pytest.approx(
        expected_tc1 * TABLE_I["cori"]["core_speed"]
    )


def test_swarp_validation():
    with pytest.raises(ValueError):
        make_swarp(n_pipelines=0)
    with pytest.raises(ValueError):
        make_swarp(cores_per_task=0)


def test_swarp_combine_alpha_encodes_poor_scaling():
    wf = make_swarp()
    assert wf.task("combine_0").alpha > wf.task("resample_0").alpha


# ----------------------------------------------------------------------
# 1000Genomes
# ----------------------------------------------------------------------
def test_genomes_task_count_matches_paper():
    """Paper: 903 tasks for the 22-chromosome instance."""
    wf = make_1000genomes()
    assert len(wf) == 903


def test_genomes_footprint_matches_paper():
    """Paper: ~67 GB footprint, ~52 GB (77%) external input."""
    wf = make_1000genomes()
    footprint = wf.data_footprint
    inputs = sum(f.size for f in wf.external_input_files())
    assert footprint == pytest.approx(67e9, rel=0.05)
    assert inputs == pytest.approx(52e9, rel=0.05)
    assert inputs / footprint == pytest.approx(0.77, abs=0.05)


def test_genomes_structure_per_chromosome():
    wf = make_1000genomes(n_chromosomes=1)
    groups = {}
    for t in wf:
        groups[t.group] = groups.get(t.group, 0) + 1
    assert groups == {
        "populations": 1,
        "individuals": 25,
        "individuals_merge": 1,
        "sifting": 1,
        "mutation_overlap": 7,
        "frequency": 7,
    }


def test_genomes_dependency_shape():
    wf = make_1000genomes(n_chromosomes=1)
    # merge waits for all 25 individuals
    parents = {t.name for t in wf.parents("individuals_merge_c1")}
    assert parents == {f"individuals_c1_k{k}" for k in range(25)}
    # overlap needs merge + sifting + populations
    parents = {t.name for t in wf.parents("mutation_overlap_c1_ALL")}
    assert parents == {"individuals_merge_c1", "sifting_c1", "populations"}


def test_genomes_two_chromosome_instance():
    """The Figure 14 reference configuration (2 chromosomes)."""
    wf = make_1000genomes(n_chromosomes=2)
    assert len(wf) == 1 + 2 * 41


def test_genomes_chromosomes_are_independent():
    wf = make_1000genomes(n_chromosomes=2)
    # No path between chr1 merge and chr2 overlap tasks.
    import networkx as nx

    assert not nx.has_path(wf.graph, "individuals_merge_c1", "mutation_overlap_c2_ALL")


def test_genomes_validation():
    with pytest.raises(ValueError):
        make_1000genomes(n_chromosomes=0)
