"""Tests for WfCommons JSON import/export."""

import json

import pytest

from repro.platform.presets import TABLE_I
from repro.workflow import File, Task, Workflow
from repro.workflow.genomes import make_1000genomes
from repro.workflow.swarp import make_swarp
from repro.workflow.wfformat import workflow_from_wfformat, workflow_to_wfformat


def small_workflow():
    f = File("f", 1000)
    return Workflow(
        "small",
        [
            Task("a", flops=3.68e10, outputs=(f,), cores=2, group="gen"),
            Task("b", flops=7.36e10, inputs=(f,), group="use"),
        ],
    )


def test_export_schema_shape():
    doc = workflow_to_wfformat(small_workflow())
    assert doc["name"] == "small"
    assert doc["schemaVersion"]
    tasks = doc["workflow"]["tasks"]
    assert [t["name"] for t in tasks] == ["a", "b"]
    assert tasks[1]["parents"] == ["a"]
    files_a = tasks[0]["files"]
    assert files_a == [{"link": "output", "name": "f", "sizeInBytes": 1000}]


def test_export_runtime_uses_reference_speed():
    doc = workflow_to_wfformat(small_workflow())
    runtime = doc["workflow"]["tasks"][0]["runtimeInSeconds"]
    assert runtime == pytest.approx(3.68e10 / TABLE_I["cori"]["core_speed"])


def test_roundtrip_preserves_structure():
    original = small_workflow()
    doc = workflow_to_wfformat(original)
    loaded = workflow_from_wfformat(doc)
    assert set(loaded.tasks) == set(original.tasks)
    for name in original.tasks:
        o, l = original.task(name), loaded.task(name)
        assert l.flops == pytest.approx(o.flops)
        assert l.cores == o.cores
        assert {f.name for f in l.inputs} == {f.name for f in o.inputs}
        assert {f.name for f in l.outputs} == {f.name for f in o.outputs}
    assert list(loaded.graph.edges) == list(original.graph.edges)


def test_roundtrip_via_file(tmp_path):
    path = tmp_path / "trace.json"
    workflow_to_wfformat(make_swarp(n_pipelines=2), path=path)
    loaded = workflow_from_wfformat(path)
    assert len(loaded) == 5
    assert loaded.task("stage_in").category.value == "stage_in"


def test_roundtrip_genomes_instance():
    doc = workflow_to_wfformat(make_1000genomes(n_chromosomes=2))
    loaded = workflow_from_wfformat(doc)
    assert len(loaded) == 1 + 2 * 41
    assert loaded.data_footprint == pytest.approx(
        make_1000genomes(n_chromosomes=2).data_footprint, rel=1e-6
    )


def test_import_from_json_string():
    text = json.dumps(workflow_to_wfformat(small_workflow()))
    loaded = workflow_from_wfformat(text)
    assert len(loaded) == 2


def test_import_legacy_jobs_key():
    doc = workflow_to_wfformat(small_workflow())
    doc["workflow"]["jobs"] = doc["workflow"].pop("tasks")
    loaded = workflow_from_wfformat(doc)
    assert len(loaded) == 2


def test_import_rejects_non_wfcommons():
    with pytest.raises(ValueError, match="WfCommons"):
        workflow_from_wfformat({"something": "else"})


def test_import_with_custom_speed_scales_flops():
    doc = workflow_to_wfformat(small_workflow())
    fast = workflow_from_wfformat(doc, reference_core_speed=2 * TABLE_I["cori"]["core_speed"])
    slow = workflow_from_wfformat(doc)
    assert fast.task("a").flops == pytest.approx(2 * slow.task("a").flops)


def test_export_with_trace_uses_observed_runtimes():
    """Exporting an executed workflow produces a WorkflowHub-style trace
    with measured runtimes and makespan."""
    from repro.scenarios import run_swarp

    result = run_swarp(n_pipelines=1, include_stage_in=False)
    doc = workflow_to_wfformat(result.workflow, trace=result.trace)
    assert doc["workflow"]["makespanInSeconds"] == pytest.approx(result.makespan)
    by_name = {t["name"]: t for t in doc["workflow"]["tasks"]}
    record = result.trace.task_record("resample_0")
    assert by_name["resample_0"]["runtimeInSeconds"] == pytest.approx(
        record.duration
    )
    # Observed runtimes include I/O, so they differ from the spec export.
    spec = workflow_to_wfformat(result.workflow)
    assert (
        by_name["resample_0"]["runtimeInSeconds"]
        != {t["name"]: t for t in spec["workflow"]["tasks"]}["resample_0"][
            "runtimeInSeconds"
        ]
    )


def test_executed_trace_reimports():
    from repro.scenarios import run_swarp

    result = run_swarp(n_pipelines=2, include_stage_in=False)
    doc = workflow_to_wfformat(result.workflow, trace=result.trace)
    loaded = workflow_from_wfformat(doc)
    assert set(loaded.tasks) == set(result.workflow.tasks)
