"""Tests for File, Task, and the Workflow DAG."""

import pytest

from repro.workflow import File, Task, Workflow


def make_chain():
    """a → b → c via files fab, fbc."""
    fab = File("fab", 100)
    fbc = File("fbc", 200)
    a = Task("a", flops=1e9, outputs=(fab,))
    b = Task("b", flops=2e9, inputs=(fab,), outputs=(fbc,))
    c = Task("c", flops=3e9, inputs=(fbc,))
    return Workflow("chain", [a, b, c])


# ----------------------------------------------------------------------
# File / Task validation
# ----------------------------------------------------------------------
def test_file_validation():
    with pytest.raises(ValueError):
        File("", 10)
    with pytest.raises(ValueError):
        File("f", -1)
    assert File("f", 0).size == 0  # zero-byte files are legal


def test_task_validation():
    with pytest.raises(ValueError):
        Task("", flops=1)
    with pytest.raises(ValueError):
        Task("t", flops=-1)
    with pytest.raises(ValueError):
        Task("t", flops=1, cores=0)
    with pytest.raises(ValueError):
        Task("t", flops=1, alpha=1.5)


def test_task_duplicate_files_rejected():
    f = File("f", 1)
    with pytest.raises(ValueError, match="duplicate input"):
        Task("t", flops=1, inputs=(f, f))
    with pytest.raises(ValueError, match="duplicate output"):
        Task("t", flops=1, outputs=(f, f))


def test_task_byte_totals():
    t = Task(
        "t",
        flops=1,
        inputs=(File("i1", 10), File("i2", 20)),
        outputs=(File("o", 5),),
    )
    assert t.input_bytes == 30
    assert t.output_bytes == 5


# ----------------------------------------------------------------------
# Workflow construction
# ----------------------------------------------------------------------
def test_dependencies_induced_by_files():
    wf = make_chain()
    assert [t.name for t in wf.parents("b")] == ["a"]
    assert [t.name for t in wf.children("b")] == ["c"]
    assert wf.graph.has_edge("a", "b")
    assert not wf.graph.has_edge("a", "c")


def test_duplicate_task_names_rejected():
    t = Task("t", flops=1)
    with pytest.raises(ValueError, match="duplicate task"):
        Workflow("w", [t, Task("t", flops=2)])


def test_conflicting_file_sizes_rejected():
    a = Task("a", flops=1, outputs=(File("f", 10),))
    b = Task("b", flops=1, inputs=(File("f", 20),))
    with pytest.raises(ValueError, match="conflicting sizes"):
        Workflow("w", [a, b])


def test_two_producers_rejected():
    f = File("f", 10)
    a = Task("a", flops=1, outputs=(f,))
    b = Task("b", flops=1, outputs=(f,))
    with pytest.raises(ValueError, match="produced by both"):
        Workflow("w", [a, b])


def test_cycle_detection():
    f1, f2 = File("f1", 1), File("f2", 1)
    a = Task("a", flops=1, inputs=(f2,), outputs=(f1,))
    b = Task("b", flops=1, inputs=(f1,), outputs=(f2,))
    with pytest.raises(ValueError, match="cycle"):
        Workflow("w", [a, b])


def test_empty_workflow_allowed():
    wf = Workflow("empty", [])
    assert len(wf) == 0
    assert wf.data_footprint == 0
    assert wf.entry_tasks() == []


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def test_topological_order_is_valid():
    wf = make_chain()
    order = [t.name for t in wf.topological_order()]
    assert order.index("a") < order.index("b") < order.index("c")


def test_entry_and_exit_tasks():
    wf = make_chain()
    assert [t.name for t in wf.entry_tasks()] == ["a"]
    assert [t.name for t in wf.exit_tasks()] == ["c"]


def test_levels():
    wf = make_chain()
    levels = [[t.name for t in level] for level in wf.levels()]
    assert levels == [["a"], ["b"], ["c"]]


def test_file_classification():
    ext = File("ext", 10)
    mid = File("mid", 20)
    out = File("out", 30)
    a = Task("a", flops=1, inputs=(ext,), outputs=(mid,))
    b = Task("b", flops=1, inputs=(mid,), outputs=(out,))
    wf = Workflow("w", [a, b])
    assert [f.name for f in wf.external_input_files()] == ["ext"]
    assert [f.name for f in wf.intermediate_files()] == ["mid"]
    assert [f.name for f in wf.output_files()] == ["out"]


def test_producer_and_consumers():
    wf = make_chain()
    assert wf.producer_of("fab").name == "a"
    assert wf.producer_of("nonexistent") is None
    assert [t.name for t in wf.consumers_of("fbc")] == ["c"]


def test_data_footprint_counts_each_file_once():
    shared = File("shared", 100)
    a = Task("a", flops=1, outputs=(shared,))
    b = Task("b", flops=1, inputs=(shared,))
    c = Task("c", flops=1, inputs=(shared,))
    wf = Workflow("w", [a, b, c])
    assert wf.data_footprint == 100


def test_total_and_critical_path_flops():
    wf = make_chain()
    assert wf.total_flops == pytest.approx(6e9)
    assert wf.critical_path_flops() == pytest.approx(6e9)

    # Diamond: a → (b, c) → d. Critical path takes the heavier branch.
    f1, f2, f3, f4 = (File(f"f{i}", 1) for i in range(4))
    tasks = [
        Task("a", flops=1e9, outputs=(f1, f2)),
        Task("b", flops=5e9, inputs=(f1,), outputs=(f3,)),
        Task("c", flops=2e9, inputs=(f2,), outputs=(f4,)),
        Task("d", flops=1e9, inputs=(f3, f4)),
    ]
    diamond = Workflow("diamond", tasks)
    assert diamond.critical_path_flops() == pytest.approx(7e9)


def test_task_lookup_error():
    wf = make_chain()
    with pytest.raises(KeyError):
        wf.task("nope")
