"""Tests for task clustering."""

import pytest

from repro.platform.presets import TABLE_I
from repro.workflow import File, Task, Workflow
from repro.workflow.swarp import make_swarp
from repro.workflow.synthetic import make_chain, make_fork_join
from repro.workflow.transforms import cluster_linear_chains, clustering_savings

SPEED = TABLE_I["cori"]["core_speed"]


def test_chain_collapses_to_single_task():
    wf = make_chain(5, task_seconds=10.0)
    clustered = cluster_linear_chains(wf)
    assert len(clustered) == 1
    (task,) = list(clustered)
    assert task.flops == pytest.approx(wf.total_flops)


def test_clustering_preserves_external_files():
    wf = make_chain(4)
    clustered = cluster_linear_chains(wf)
    assert [f.name for f in clustered.external_input_files()] == [
        f.name for f in wf.external_input_files()
    ]
    assert [f.name for f in clustered.output_files()] == [
        f.name for f in wf.output_files()
    ]


def test_clustering_removes_intermediates():
    wf = make_chain(4, file_size=100e6)
    eliminated, saved_bytes = clustering_savings(wf)
    assert eliminated == 3
    assert saved_bytes == pytest.approx(3 * 100e6)


def test_fork_join_is_not_linear():
    """Workers share a parent/child, so only nothing merges... except
    each worker chain is length 1 (source has 4 children, sink 4
    parents): the structure is preserved entirely."""
    wf = make_fork_join(4)
    clustered = cluster_linear_chains(wf)
    assert len(clustered) == len(wf)


def test_swarp_pipelines_cluster():
    """Each Resample→Combine pair is a private linear chain."""
    wf = make_swarp(n_pipelines=3, include_stage_in=False)
    clustered = cluster_linear_chains(wf)
    assert len(clustered) == 3
    for task in clustered:
        assert "+" in task.name
        assert task.group == "clustered"


def test_swarp_with_stage_in_not_merged_into_it():
    """Stage-in tasks are never clustered."""
    wf = make_swarp(n_pipelines=1, include_stage_in=True)
    clustered = cluster_linear_chains(wf)
    names = set(clustered.tasks)
    assert "stage_in" in names
    assert "resample_0+combine_0" in names


def test_shared_file_blocks_merge():
    """If a second consumer reads the intermediate, no merge happens."""
    mid = File("mid", 10)
    a = Task("a", flops=1, outputs=(mid,))
    b = Task("b", flops=1, inputs=(mid,))
    c = Task("c", flops=1, inputs=(mid,))
    wf = Workflow("shared", [a, b, c])
    assert len(cluster_linear_chains(wf)) == 3


def test_alpha_is_flops_weighted():
    mid = File("mid", 10)
    a = Task("a", flops=3e9, alpha=0.0, outputs=(mid,))
    b = Task("b", flops=1e9, alpha=0.8, inputs=(mid,))
    clustered = cluster_linear_chains(Workflow("w", [a, b]))
    (task,) = list(clustered)
    assert task.alpha == pytest.approx(0.2)


def test_merged_cores_is_max():
    mid = File("mid", 10)
    a = Task("a", flops=1, cores=4, outputs=(mid,))
    b = Task("b", flops=1, cores=16, inputs=(mid,))
    clustered = cluster_linear_chains(Workflow("w", [a, b]))
    assert list(clustered)[0].cores == 16


def test_clustered_workflow_executes_faster_on_slow_storage():
    """The point of clustering: the chain's intermediates never touch
    storage, so on a PFS-only platform the clustered version wins."""
    from repro import des
    from repro.compute import ComputeService
    from repro.platform import Platform
    from repro.platform.presets import cori_spec
    from repro.storage import ParallelFileSystem
    from repro.wms import WorkflowEngine

    wf = make_chain(4, task_seconds=1.0, file_size=200e6)

    def makespan(workflow):
        env = des.Environment()
        plat = Platform(env, cori_spec())
        engine = WorkflowEngine(
            plat,
            workflow,
            ComputeService(plat, ["cn0"]),
            ParallelFileSystem(plat),
            host_assignment=lambda t: "cn0",
        )
        return engine.run().makespan

    assert makespan(cluster_linear_chains(wf)) < makespan(wf)
