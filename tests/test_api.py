"""Tests for the top-level ``repro.simulate`` facade."""

import json

import pytest

import repro
from repro.platform.presets import cori_spec
from repro.workflow.swarp import make_swarp


@pytest.fixture(scope="module")
def platform():
    return cori_spec(n_compute=1, n_bb_nodes=1)


@pytest.fixture(scope="module")
def workflow():
    return make_swarp()


def test_top_level_reexports():
    assert repro.simulate is repro.api.simulate
    assert repro.Result is repro.api.Result
    from repro.simulator import Simulator, SimulatorConfig

    assert repro.Simulator is Simulator
    assert repro.SimulatorConfig is SimulatorConfig
    from repro.storage import BBMode

    assert repro.BBMode is BBMode


def test_simulate_returns_result(platform, workflow):
    result = repro.simulate(platform, workflow)
    assert isinstance(result, repro.Result)
    assert result.makespan > 0
    assert result.makespan == result.trace.makespan
    assert len(result.trace.records) == len(list(workflow))
    assert result.telemetry is None  # unobserved run


def test_simulate_with_observer_collects_telemetry(platform, workflow):
    result = repro.simulate(platform, workflow, observer=True)
    assert result.telemetry is not None
    assert result.telemetry.counter("network.solver_calls").value > 0


def test_simulate_accepts_config_mapping(platform, workflow):
    default = repro.simulate(platform, workflow)
    result = repro.simulate(
        platform,
        workflow,
        config={"network_allocator": "incremental", "input_fraction": 1.0},
    )
    assert result.config.network_allocator == "incremental"
    assert result.makespan == default.makespan


def test_simulate_accepts_config_object(platform, workflow):
    config = repro.SimulatorConfig(bb_mode=repro.BBMode.PRIVATE)
    result = repro.simulate(platform, workflow, config=config)
    assert result.config is config
    assert result.makespan > 0


def test_simulate_from_json_files(tmp_path, platform, workflow):
    from repro.platform import platform_to_json
    from repro.workflow.wfformat import workflow_to_wfformat

    platform_path = tmp_path / "platform.json"
    workflow_path = tmp_path / "workflow.json"
    platform_to_json(platform, platform_path)
    workflow_to_wfformat(workflow, path=workflow_path)
    result = repro.simulate(platform_path, workflow_path)
    assert result.makespan > 0


def test_export_telemetry_requires_observer(tmp_path, platform, workflow):
    result = repro.simulate(platform, workflow)
    with pytest.raises(ValueError, match="without an observer"):
        result.export_telemetry(tmp_path / "telemetry")


def test_export_telemetry_writes_manifest(tmp_path, platform, workflow):
    result = repro.simulate(platform, workflow, observer=True)
    directory = result.export_telemetry(tmp_path / "telemetry")
    manifest = json.loads((directory / "manifest.json").read_text())
    assert manifest  # shape covered by tests/obs; existence is enough here
