"""Sweep live stream and in-flight/latency telemetry."""

import json

import pytest

from repro.obs.log import iter_ndjson
from repro.sweep import SweepSpec, SweepTelemetry, run_sweep
from repro.sweep.live import SWEEP_LIVE_SCHEMA, SweepLiveWriter


def _spec(xs=(1, 2, 3), func="tests.sweep.points:square", **kwargs):
    return SweepSpec.cartesian("demo", func, axes={"x": list(xs)}, **kwargs)


def _stream(live_dir):
    records = list(iter_ndjson(live_dir / "sweep.ndjson"))
    assert records[0] == {"schema": SWEEP_LIVE_SCHEMA}
    return records[1:]


# ----------------------------------------------------------------------
# Live stream contents
# ----------------------------------------------------------------------
def test_serial_run_streams_point_lifecycle(tmp_path):
    run_sweep(_spec(), live_dir=tmp_path / "live")
    records = _stream(tmp_path / "live")
    assert [r["event"] for r in records] == [
        "point_started", "point_completed",
        "point_started", "point_completed",
        "point_started", "point_completed",
        "sweep_done",
    ]
    assert [r.get("point_id") for r in records[:-1:2]] == ["x=1", "x=2", "x=3"]
    assert all("duration" in r for r in records
               if r["event"] == "point_completed")
    final = records[-1]["progress"]
    assert final["completed"] == 3 and final["in_flight"] == 0
    heartbeat = json.loads((tmp_path / "live" / "heartbeat.json").read_text())
    assert heartbeat["closed"] is True
    assert heartbeat["in_flight"] == {}
    assert heartbeat["progress"]["completed"] == 3


def test_parallel_run_streams_every_point(tmp_path):
    run_sweep(_spec([1, 2, 3, 4]), workers=4, live_dir=tmp_path / "live")
    records = _stream(tmp_path / "live")
    started = {r["point_id"] for r in records if r["event"] == "point_started"}
    completed = {
        r["point_id"] for r in records if r["event"] == "point_completed"
    }
    assert started == completed == {"x=1", "x=2", "x=3", "x=4"}
    assert records[-1]["event"] == "sweep_done"


def test_failures_and_retries_are_streamed(tmp_path):
    with pytest.raises(Exception):
        run_sweep(
            _spec([1], func="tests.sweep.points:boom"),
            retries=1, live_dir=tmp_path / "live",
        )
    events = [r["event"] for r in _stream(tmp_path / "live")]
    assert "point_retry" in events
    assert "point_failed" in events
    failed = next(
        r for r in _stream(tmp_path / "live") if r["event"] == "point_failed"
    )
    assert "boom" in failed["error"]


def test_cached_points_are_streamed(tmp_path):
    from repro.sweep import SweepCache

    cache = SweepCache(tmp_path / "cache")
    run_sweep(_spec(), cache=cache)
    run_sweep(_spec(), cache=cache, live_dir=tmp_path / "live")
    records = _stream(tmp_path / "live")
    assert [r["event"] for r in records] == ["point_cached"] * 3 + ["sweep_done"]
    assert records[-1]["progress"]["cached"] == 3


def test_sweep_without_live_dir_writes_nothing(tmp_path):
    run_sweep(_spec())
    assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# Telemetry: in-flight gauge and latency histogram
# ----------------------------------------------------------------------
def test_point_seconds_histogram_feeds_stats(tmp_path):
    telemetry = SweepTelemetry("demo")
    run_sweep(_spec(), telemetry=telemetry)
    assert telemetry.point_seconds.count == 3
    assert telemetry.point_latency(0.5) is not None
    snap = telemetry.snapshot()
    assert "sweep.point_seconds" in snap["histograms"]
    assert snap["point_latency"]["p50"] is not None
    assert snap["point_latency"]["p99"] is not None
    assert snap["gauges"]["sweep.points_in_flight"] == 0.0


def test_in_flight_gauge_returns_to_zero_parallel():
    telemetry = SweepTelemetry("demo")
    run_sweep(_spec([1, 2, 3, 4]), workers=2, telemetry=telemetry)
    assert telemetry.in_flight.value == 0.0
    assert telemetry.point_seconds.count == 4


def test_stats_schema_is_unchanged():
    # The stats export schema is pinned: histograms/latency are additive.
    snap = SweepTelemetry("demo").snapshot()
    assert snap["schema"] == "repro.sweep.stats/1"
    assert {"counters", "gauges", "histograms", "point_latency",
            "cache_hit_ratio"} <= set(snap)


# ----------------------------------------------------------------------
# Writer unit behavior
# ----------------------------------------------------------------------
def test_writer_tracks_in_flight_and_closes_once(tmp_path):
    telemetry = SweepTelemetry("demo")
    clock = iter(range(100)).__next__
    writer = SweepLiveWriter(tmp_path, telemetry, clock=lambda: float(clock()))
    writer.record("point_started", "x=1", attempt=1)
    heartbeat = json.loads((tmp_path / "heartbeat.json").read_text())
    assert heartbeat["in_flight"] == {"x=1": 0.0}
    assert heartbeat["closed"] is False
    writer.record("point_completed", "x=1", duration=1.0)
    writer.close()
    writer.close()  # idempotent
    writer.record("point_started", "x=2")  # ignored after close
    heartbeat = json.loads((tmp_path / "heartbeat.json").read_text())
    assert heartbeat["closed"] is True
    assert heartbeat["in_flight"] == {}
    events = [r["event"] for r in _stream(tmp_path)]
    assert events == ["point_started", "point_completed", "sweep_done"]


def test_sweep_cli_live_flag(tmp_path, capsys):
    from repro.sweep.cli import main

    code = main([
        "fig13", "--quick", "--no-cache",
        "--live", str(tmp_path / "live"),
    ])
    assert code == 0
    live = tmp_path / "live" / "fig13"
    heartbeat = json.loads((live / "heartbeat.json").read_text())
    assert heartbeat["closed"] is True
    assert heartbeat["progress"]["failed"] == 0
    assert _stream(live)[-1]["event"] == "sweep_done"
