"""Unit tests for the content-addressed sweep cache."""

from repro.sweep import SweepCache, SweepSpec
from repro.sweep.cache import point_key, point_key_doc


def _spec(version=1):
    return SweepSpec(
        sweep_id="demo",
        func="tests.sweep.points:square",
        points=({"x": 1}, {"x": 2}),
        version=version,
    )


def test_store_lookup_round_trip(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _spec()
    key = point_key(spec, {"x": 1})
    assert SweepCache.is_miss(cache.lookup(key))
    cache.store(key, [1.5, 2.5], point_key_doc(spec, {"x": 1}))
    assert cache.lookup(key) == [1.5, 2.5]
    assert cache.hits == 1 and cache.misses == 1


def test_none_value_distinct_from_miss(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _spec()
    key = point_key(spec, {"x": 1})
    cache.store(key, None, point_key_doc(spec, {"x": 1}))
    hit = cache.lookup(key)
    assert hit is None
    assert not SweepCache.is_miss(hit)


def test_key_depends_on_params_and_version():
    spec = _spec()
    assert point_key(spec, {"x": 1}) != point_key(spec, {"x": 2})
    assert point_key(spec, {"x": 1}) != point_key(_spec(version=2), {"x": 1})
    # Stable across calls (no timestamps or randomness in the key doc).
    assert point_key(spec, {"x": 1}) == point_key(spec, {"x": 1})


def test_key_doc_carries_provenance():
    spec = _spec()
    doc = point_key_doc(spec, {"x": 1})
    assert doc["sweep"]["sweep_id"] == "demo"
    assert doc["sweep"]["version"] == 1
    assert doc["params"] == {"x": 1}
    assert "simulator_version" in doc  # the code-version salt


def test_on_disk_layout(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _spec()
    key = point_key(spec, {"x": 2})
    path = cache.store(key, 4, point_key_doc(spec, {"x": 2}))
    assert path == tmp_path / key[:2] / f"{key}.json"
    assert path.exists()
    assert len(cache) == 1
    # No stray temp files after the atomic rename.
    assert not list(tmp_path.glob("**/*.tmp.*"))


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _spec()
    key = point_key(spec, {"x": 1})
    cache.store(key, 1, point_key_doc(spec, {"x": 1}))
    (tmp_path / key[:2] / f"{key}.json").write_text("{not json")
    assert SweepCache.is_miss(cache.lookup(key))


def test_valid_json_wrong_shape_is_a_miss(tmp_path):
    """Well-formed JSON that is not a cache entry must read as a miss.

    Regression: lookup used to index ``doc["value"]`` unguarded, so a
    truncated/foreign file holding e.g. a list raised and killed the
    whole sweep instead of recomputing one point.
    """
    cache = SweepCache(tmp_path)
    spec = _spec()
    key = point_key(spec, {"x": 1})
    path = cache.store(key, 1, point_key_doc(spec, {"x": 1}))
    wrong_shapes = (
        "[1, 2, 3]",
        '"a string"',
        "null",
        '{"schema": "other/1", "value": 1}',
        '{"key": "but-no-value"}',
    )
    for wrong in wrong_shapes:
        path.write_text(wrong)
        assert SweepCache.is_miss(cache.lookup(key)), wrong
