"""Importable point functions for sweep tests.

Worker processes resolve point functions by dotted reference, so the
functions under test must live in an importable module — closures and
test-local lambdas cannot cross the process boundary.
"""

from __future__ import annotations

import os
import time
from pathlib import Path


def square(params):
    return params["x"] * params["x"]


def tupled(params):
    """Returns tuples/nested structure to exercise canonicalization."""
    return {"pair": (params["x"], params["x"] + 1), "one": (1,)}


def boom(params):
    raise RuntimeError(f"boom on {params['x']}")


def flaky(params):
    """Fails until its file-based attempt counter reaches ``succeed_on``.

    The counter lives on disk so the behavior is identical whether
    attempts land in one process (serial) or several (parallel).
    """
    path = Path(params["counter_path"])
    attempt = int(path.read_text()) + 1 if path.exists() else 1
    path.write_text(str(attempt))
    if attempt < params["succeed_on"]:
        raise RuntimeError(f"attempt {attempt} fails")
    return attempt


def slow(params):
    time.sleep(params["sleep_s"])
    return params["sleep_s"]


def unjsonable(params):
    return {"bad": {1, 2}}


def dies(params):
    """Exits without reporting a result (simulates a segfault/OOM kill)."""
    os._exit(3)


def writes_obs(params, obs_dir=None):
    if obs_dir is not None:
        Path(obs_dir, "marker.txt").write_text(str(params["x"]))
    return params["x"]
