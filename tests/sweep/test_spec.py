"""Unit tests for sweep specifications and point identities."""

import pytest

from repro.sweep import SweepSpec, point_id, resolve_func, sanitize_point_id


def test_point_id_sorts_keys():
    assert point_id({"b": 2, "a": 1}) == point_id({"a": 1, "b": 2}) == "a=1,b=2"


def test_point_id_formats_bools_and_floats():
    assert point_id({"flag": True}) == "flag=true"
    assert point_id({"flag": False}) == "flag=false"
    assert point_id({"f": 0.25}) == "f=0.25"
    # repr keeps shortest round-trippable form, stable across runs.
    assert point_id({"f": 0.1}) == "f=0.1"


def test_point_id_rejects_empty():
    with pytest.raises(ValueError):
        point_id({})


def test_sanitize_point_id_is_filesystem_safe():
    assert sanitize_point_id("a=1,b=x/y z") == "a=1,b=x_y_z"
    assert "/" not in sanitize_point_id("path=/etc/passwd")


def test_cartesian_product_and_constants():
    spec = SweepSpec.cartesian(
        "demo",
        "tests.sweep.points:square",
        axes={"x": [1, 2, 3], "y": ["a", "b"]},
        constants={"n": 5},
    )
    assert len(spec) == 6
    assert all(p["n"] == 5 for p in spec.points)
    assert spec.point_ids == tuple(sorted(spec.point_ids))


def test_cartesian_requires_axes():
    with pytest.raises(ValueError):
        SweepSpec.cartesian("demo", "tests.sweep.points:square", axes={})


def test_duplicate_points_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        SweepSpec(
            sweep_id="demo",
            func="tests.sweep.points:square",
            points=({"x": 1}, {"x": 1}),
        )


def test_non_json_params_rejected():
    with pytest.raises(ValueError, match="JSON"):
        SweepSpec(
            sweep_id="demo",
            func="tests.sweep.points:square",
            points=({"x": (1, 2)},),  # tuples don't survive a round trip
        )
    with pytest.raises(ValueError, match="JSON"):
        SweepSpec(
            sweep_id="demo",
            func="tests.sweep.points:square",
            points=({"x": float("nan")},),
        )


def test_numpy_int_scalars_rejected():
    # np.float64 subclasses float and survives the round trip; np.int64
    # does not serialize and must be cast by the spec author.
    np = pytest.importorskip("numpy")
    with pytest.raises(ValueError, match="JSON"):
        SweepSpec(
            sweep_id="demo",
            func="tests.sweep.points:square",
            points=({"x": np.int64(3)},),
        )


def test_func_reference_validated():
    with pytest.raises(ValueError, match="pkg.mod:callable"):
        SweepSpec(sweep_id="demo", func="no_colon_here", points=({"x": 1},))


def test_points_by_id_sorted():
    spec = SweepSpec(
        sweep_id="demo",
        func="tests.sweep.points:square",
        points=({"x": 2}, {"x": 1}),
    )
    assert list(spec.points_by_id()) == ["x=1", "x=2"]


def test_resolve_func():
    func = resolve_func("tests.sweep.points:square")
    assert func({"x": 3}) == 9
    with pytest.raises(ValueError):
        resolve_func("tests.sweep.points")
    with pytest.raises(ValueError):
        resolve_func("tests.sweep.points:missing")
    with pytest.raises(ModuleNotFoundError):
        resolve_func("tests.sweep.nope:missing")
