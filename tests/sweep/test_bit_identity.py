"""Acceptance tests: serial vs. parallel bit-identity on a real figure.

These run the actual fig13 point function (1000Genomes simulation) on a
reduced spec — small enough for CI, real enough to exercise pickling,
per-process calibration caches, and float round-tripping.
"""

import json

import pytest

import repro.experiments.fig13 as fig13
from repro.sweep import SweepCache, SweepSpec, run_sweep


def _small_fig13_spec():
    """A 4-point fig13 spec (2 chromosomes, 2 fractions, both systems)."""
    return SweepSpec.cartesian(
        "fig13-small",
        "repro.experiments.fig13:compute_point",
        axes={"system": ["cori", "summit"], "fraction": [0.0, 1.0]},
        constants={"n_chromosomes": 2},
        pass_obs_dir=True,
    )


def test_serial_and_parallel_runs_are_bit_identical():
    spec = _small_fig13_spec()
    serial = run_sweep(spec, workers=1)
    parallel = run_sweep(spec, workers=4)
    assert serial.count("completed") == parallel.count("completed") == 4
    # Byte-identical, not approximately equal: canonical JSON of the
    # full value map must match exactly.
    assert json.dumps(serial.values(), sort_keys=True) == json.dumps(
        parallel.values(), sort_keys=True
    )
    # Sanity: staging everything into the BB helps on both systems.
    values = serial.values()
    for system in ("cori", "summit"):
        full = values[f"fraction=1.0,n_chromosomes=2,system={system}"]
        none = values[f"fraction=0.0,n_chromosomes=2,system={system}"]
        assert full < none


def test_cached_rerun_invokes_no_simulation(tmp_path, monkeypatch):
    spec = _small_fig13_spec()
    cache_dir = tmp_path / "cache"
    first = run_sweep(spec, cache=SweepCache(cache_dir))
    assert first.count("completed") == 4

    def no_sim(*args, **kwargs):
        raise AssertionError("simulator invoked on a fully cached re-run")

    # fig13 imported run_genomes at module scope; patching that name
    # guarantees any cache miss would crash loudly.
    monkeypatch.setattr(fig13, "run_genomes", no_sim)
    second = run_sweep(spec, cache=SweepCache(cache_dir))
    assert second.count("cached") == 4
    assert second.count("completed") == 0
    assert json.dumps(second.values(), sort_keys=True) == json.dumps(
        first.values(), sort_keys=True
    )


def test_figure_module_output_identical_through_sweep_options(tmp_path):
    """fig13.run() through cache+sweep equals the plain serial run."""
    from repro.sweep import SweepOptions

    plain = fig13.run(quick=True)
    cached = fig13.run(
        quick=True, sweep=SweepOptions(cache_dir=tmp_path / "cache")
    )
    rerun = fig13.run(
        quick=True, sweep=SweepOptions(cache_dir=tmp_path / "cache")
    )
    assert plain.rows == cached.rows == rerun.rows


def test_points_complete_at_same_values_with_obs(tmp_path):
    """Telemetry export must not perturb simulated results."""
    spec = _small_fig13_spec()
    bare = run_sweep(spec, workers=1)
    with_obs = run_sweep(spec, workers=1, obs_dir=tmp_path / "obs")
    assert bare.values() == with_obs.values()
    sample = tmp_path / "obs" / "fraction=0.0,n_chromosomes=2,system=cori"
    assert (sample / "trace.json").exists()
    assert (sample / "manifest.json").exists()
    assert (sample / "point.manifest.json").exists()


def test_policy_sweep_serial_parallel_bit_identical():
    """The queue-policy comparison sweep (every registered policy on
    the contended scenario) is bit-identical across worker counts —
    the acceptance gate for policy determinism under ``--workers 4``."""
    from repro.experiments.policies import sweep_spec

    spec = sweep_spec(quick=True)
    serial = run_sweep(spec, workers=1)
    parallel = run_sweep(spec, workers=4)
    assert serial.count("completed") == parallel.count("completed") == 4
    assert json.dumps(serial.values(), sort_keys=True) == json.dumps(
        parallel.values(), sort_keys=True
    )
    values = serial.values()
    fifo = values["n_jobs=8,policy=fifo"]
    for policy in ("easy-backfill", "conservative-backfill", "plan"):
        point = values[f"n_jobs=8,policy={policy}"]
        # Same total work, strictly less BB-capacity wait than FIFO.
        assert point["busy_s"] == fifo["busy_s"]
        assert point["wait:bb_capacity"] < fifo["wait:bb_capacity"]
