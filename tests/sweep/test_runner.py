"""Unit and integration tests for the sweep runner."""

import json

import pytest

import tests.sweep.points as points_module
from repro.sweep import (
    SweepCache,
    SweepError,
    SweepOptions,
    SweepSpec,
    SweepTelemetry,
    run_sweep,
)
from repro.sweep.runner import _backoff_delay, _canonical


def _spec(xs=(1, 2, 3), func="tests.sweep.points:square", **kwargs):
    return SweepSpec.cartesian("demo", func, axes={"x": list(xs)}, **kwargs)


# ----------------------------------------------------------------------
# Serial path
# ----------------------------------------------------------------------
def test_serial_run_values_in_point_id_order():
    outcome = run_sweep(_spec([3, 1, 2]))
    assert [p.point_id for p in outcome.points] == ["x=1", "x=2", "x=3"]
    assert outcome.values() == {"x=1": 1, "x=2": 4, "x=3": 9}
    assert outcome.count("completed") == 3
    assert outcome.value("x=2") == 4
    with pytest.raises(KeyError):
        outcome.value("x=99")


def test_values_are_canonicalized():
    outcome = run_sweep(_spec([1], func="tests.sweep.points:tupled"))
    # Tuples became lists exactly once, matching what a cache read or a
    # pickled worker result would contain.
    assert outcome.value("x=1") == {"pair": [1, 2], "one": [1]}


def test_canonical_rejects_non_json():
    with pytest.raises(SweepError, match="JSON"):
        _canonical({1, 2})
    with pytest.raises(SweepError, match="JSON"):
        _canonical(float("nan"))
    with pytest.raises(SweepError, match="JSON"):
        run_sweep(_spec([1], func="tests.sweep.points:unjsonable"))


def test_argument_validation():
    spec = _spec([1])
    with pytest.raises(ValueError):
        run_sweep(spec, workers=0)
    with pytest.raises(ValueError):
        run_sweep(spec, retries=-1)
    with pytest.raises(ValueError):
        run_sweep(spec, timeout=0)


def test_failure_strict_raises():
    with pytest.raises(SweepError, match="boom on 1"):
        run_sweep(_spec([1], func="tests.sweep.points:boom"))


def test_failure_lenient_records_outcome():
    outcome = run_sweep(
        _spec([1, 2], func="tests.sweep.points:boom"), strict=False
    )
    assert outcome.count("failed") == 2
    assert all(p.attempts == 1 for p in outcome.failed)
    assert "boom" in outcome.failed[0].error


def test_serial_retries_until_success(tmp_path):
    counter = tmp_path / "attempts"
    spec = SweepSpec(
        sweep_id="demo",
        func="tests.sweep.points:flaky",
        points=({"counter_path": str(counter), "succeed_on": 3},),
    )
    telemetry = SweepTelemetry("demo")
    outcome = run_sweep(spec, retries=3, telemetry=telemetry)
    point = outcome.points[0]
    assert point.status == "completed"
    assert point.value == 3
    assert point.attempts == 3
    assert telemetry.retried.value == 2


def test_backoff_is_bounded():
    delays = [_backoff_delay(n) for n in range(1, 12)]
    assert delays[0] == pytest.approx(0.1)
    assert delays[1] == pytest.approx(0.2)
    assert max(delays) <= 5.0
    assert delays == sorted(delays)


# ----------------------------------------------------------------------
# Cache integration
# ----------------------------------------------------------------------
def test_cached_rerun_executes_nothing(tmp_path, monkeypatch):
    spec = _spec([1, 2, 3])
    cache = SweepCache(tmp_path / "cache")
    first = run_sweep(spec, cache=cache)
    assert first.count("completed") == 3

    # If any point escaped the cache, this would blow up the re-run.
    def explode(params):
        raise AssertionError("point function invoked on a cached re-run")

    monkeypatch.setattr(points_module, "square", explode)
    second = run_sweep(spec, cache=SweepCache(tmp_path / "cache"))
    assert second.count("cached") == 3
    assert second.count("completed") == 0
    assert second.values() == first.values()
    assert json.dumps(second.values(), sort_keys=True) == json.dumps(
        first.values(), sort_keys=True
    )


def test_version_bump_invalidates_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    run_sweep(_spec([1]), cache=SweepCache(cache_dir))
    outcome = run_sweep(
        _spec([1], version=2), cache=SweepCache(cache_dir)
    )
    assert outcome.count("completed") == 1
    assert outcome.count("cached") == 0


def test_telemetry_counts_and_stats(tmp_path):
    spec = _spec([1, 2])
    cache = SweepCache(tmp_path / "cache")
    telemetry = SweepTelemetry("demo")
    run_sweep(spec, cache=cache, telemetry=telemetry)
    assert telemetry.completed.value == 2
    assert telemetry.cache_hit_ratio == 0.0

    telemetry2 = SweepTelemetry("demo")
    run_sweep(spec, cache=SweepCache(tmp_path / "cache"), telemetry=telemetry2)
    assert telemetry2.cached.value == 2
    assert telemetry2.cache_hit_ratio == 1.0
    snapshot = telemetry2.snapshot()
    assert snapshot["schema"] == "repro.sweep.stats/1"
    assert snapshot["counters"]["sweep.points_cached"] == 2
    stats_path = tmp_path / "stats.json"
    telemetry2.write(stats_path)
    assert json.loads(stats_path.read_text())["sweep_id"] == "demo"


# ----------------------------------------------------------------------
# Parallel path
# ----------------------------------------------------------------------
def test_parallel_matches_serial():
    spec = _spec([1, 2, 3, 4, 5])
    serial = run_sweep(spec, workers=1)
    parallel = run_sweep(spec, workers=3)
    assert json.dumps(serial.values(), sort_keys=True) == json.dumps(
        parallel.values(), sort_keys=True
    )


def test_parallel_timeout_fails_point():
    spec = SweepSpec(
        sweep_id="demo",
        func="tests.sweep.points:slow",
        points=({"sleep_s": 30.0},),
    )
    outcome = run_sweep(spec, workers=2, timeout=0.5, strict=False)
    point = outcome.points[0]
    assert point.status == "failed"
    assert "TimeoutError" in point.error
    # Regression: the expired worker must be *terminated*, not merely
    # abandoned — an abandoned worker used to block pool shutdown for
    # the full 30s sleep.
    assert outcome.wall_time_s < 10.0


def test_parallel_timeout_retries_then_fails():
    spec = SweepSpec(
        sweep_id="demo",
        func="tests.sweep.points:slow",
        points=({"sleep_s": 30.0},),
    )
    outcome = run_sweep(spec, workers=2, timeout=0.5, retries=1, strict=False)
    point = outcome.points[0]
    assert point.status == "failed"
    assert point.attempts == 2
    assert "TimeoutError" in point.error
    # Two terminated attempts plus backoff, never a 30s wait.
    assert outcome.wall_time_s < 10.0


def test_queued_points_do_not_inherit_timeout():
    """Regression: the timeout clock starts at *execution*, not submission.

    Eight 0.3s points on 2 workers keep the last points queued well past
    the 1s per-point budget; the old runner stamped every deadline at
    submission time and spuriously timed them out without ever running
    them.  Each point individually is far under budget, so all must
    complete.
    """
    spec = SweepSpec(
        sweep_id="demo",
        func="tests.sweep.points:slow",
        points=tuple({"x": i, "sleep_s": 0.3} for i in range(8)),
    )
    outcome = run_sweep(spec, workers=2, timeout=1.0)
    assert outcome.count("completed") == 8
    assert all(p.attempts == 1 for p in outcome.points)


def test_parallel_non_json_value_is_per_point_failure():
    """Regression: a non-JSON point value used to escape the parallel
    path's bookkeeping and abort the sweep mid-flight; it must be an
    ordinary per-point failure exactly like on the serial path."""
    outcome = run_sweep(
        _spec([1, 2], func="tests.sweep.points:unjsonable"),
        workers=2,
        strict=False,
    )
    assert outcome.count("failed") == 2
    assert all("JSON" in p.error for p in outcome.failed)
    with pytest.raises(SweepError, match="JSON"):
        run_sweep(_spec([1], func="tests.sweep.points:unjsonable"), workers=2)


def test_parallel_worker_crash_is_per_point_failure():
    spec = SweepSpec(
        sweep_id="demo",
        func="tests.sweep.points:dies",
        points=({"x": 1}, {"x": 2}),
    )
    outcome = run_sweep(spec, workers=2, strict=False)
    assert outcome.count("failed") == 2
    assert all("WorkerCrash" in p.error for p in outcome.failed)


def test_parallel_failure_strict_raises():
    with pytest.raises(SweepError, match="failed"):
        run_sweep(_spec([1, 2], func="tests.sweep.points:boom"), workers=2)


def test_parallel_retries(tmp_path):
    counter = tmp_path / "attempts"
    spec = SweepSpec(
        sweep_id="demo",
        func="tests.sweep.points:flaky",
        points=({"counter_path": str(counter), "succeed_on": 2},),
    )
    outcome = run_sweep(spec, workers=2, retries=2)
    point = outcome.points[0]
    assert point.status == "completed"
    assert point.attempts == 2


# ----------------------------------------------------------------------
# Per-point telemetry directories
# ----------------------------------------------------------------------
def test_obs_dirs_created_with_manifests(tmp_path):
    obs = tmp_path / "obs"
    outcome = run_sweep(_spec([1, 2]), obs_dir=obs)
    assert outcome.count("completed") == 2
    for pid in ("x=1", "x=2"):
        manifest = json.loads((obs / pid / "point.manifest.json").read_text())
        assert manifest["point_id"] == pid
        assert manifest["status"] == "completed"
        assert manifest["manifest"]["sweep"]["sweep_id"] == "demo"


def test_obs_collision_fails_fast(tmp_path):
    obs = tmp_path / "obs"
    run_sweep(_spec([1]), obs_dir=obs)
    with pytest.raises(SweepError, match="collision"):
        run_sweep(_spec([1]), obs_dir=obs)


def test_pass_obs_dir_hands_directory_to_point(tmp_path):
    obs = tmp_path / "obs"
    spec = SweepSpec(
        sweep_id="demo",
        func="tests.sweep.points:writes_obs",
        points=({"x": 7},),
        pass_obs_dir=True,
    )
    outcome = run_sweep(spec, obs_dir=obs)
    assert outcome.value("x=7") == 7
    assert (obs / "x=7" / "marker.txt").read_text() == "7"


def test_sweep_options_round_trip(tmp_path):
    options = SweepOptions(workers=1, cache_dir=tmp_path / "cache")
    outcome = options.run(_spec([1, 2]))
    assert outcome.count("completed") == 2
    again = SweepOptions(workers=1, cache_dir=tmp_path / "cache").run(_spec([1, 2]))
    assert again.count("cached") == 2
    assert SweepOptions().make_cache() is None
