"""Folded-stacks export format checks."""

from repro.profile import Profile, Segment, folded_stacks, write_flamegraph


def _profile():
    return Profile(
        "my wf",
        6.0,
        [
            Segment(0.0, 2.0, "read:pfs", task="t1"),
            Segment(2.0, 5.0, "compute", task="t1"),
            Segment(5.0, 6.0, "compute", task="t2"),
        ],
    )


def test_folded_lines_are_stack_space_value():
    text = folded_stacks(_profile())
    lines = text.strip().splitlines()
    assert len(lines) == 3
    for line in lines:
        stack, _, value = line.rpartition(" ")
        assert int(value) > 0
        frames = stack.split(";")
        assert frames[0] == "my_wf"  # spaces sanitized
        assert len(frames) == 3


def test_values_are_microseconds():
    text = folded_stacks(_profile())
    values = {
        line.rsplit(" ", 1)[0]: int(line.rsplit(" ", 1)[1])
        for line in text.strip().splitlines()
    }
    assert values["my_wf;read:pfs;t1"] == 2_000_000
    assert values["my_wf;compute;t1"] == 3_000_000


def test_same_stack_segments_collapse():
    profile = Profile(
        "wf",
        4.0,
        [
            Segment(0.0, 1.0, "compute", task="t"),
            Segment(1.0, 3.0, "read:pfs", task="t"),
            Segment(3.0, 4.0, "compute", task="t"),
        ],
    )
    lines = folded_stacks(profile).strip().splitlines()
    assert len(lines) == 2  # both compute segments merged
    assert "wf;compute;t 2000000" in lines


def test_write_flamegraph(tmp_path):
    path = write_flamegraph(_profile(), tmp_path / "out" / "profile.folded")
    assert path.is_file()
    assert path.read_text() == folded_stacks(_profile())
