"""The profiler's core contract: attribution sums to the makespan.

The acceptance criterion is explicit — within relative 1e-9 on SWarp in
all three BB configurations and on the full 1000Genomes case study —
and the invariant is enforced at two levels: by construction in the
backward walk, and again by :class:`repro.profile.Profile` itself.
"""

import pytest

from repro.obs import Observer
from repro.profile import UNATTRIBUTED, build_profile
from repro.scenarios import run_genomes, run_swarp
from repro.storage.burst_buffer import BBMode
from repro.traces.events import ExecutionTrace, TaskRecord

RTOL = 1e-9


def _profile_for(scenario_fn):
    obs = Observer()
    result = scenario_fn(obs)
    profile = build_profile(result.trace, observer=obs)
    return result, profile


@pytest.mark.parametrize(
    "name,scenario",
    [
        ("private", lambda o: run_swarp(bb_mode=BBMode.PRIVATE, observer=o)),
        ("striped", lambda o: run_swarp(bb_mode=BBMode.STRIPED, observer=o)),
        ("onnode", lambda o: run_swarp(system="summit", observer=o)),
    ],
)
def test_attribution_sums_to_makespan_on_swarp(name, scenario):
    result, profile = _profile_for(scenario)
    total = sum(profile.attribution.values())
    assert total == pytest.approx(result.trace.makespan, rel=RTOL)
    assert profile.makespan == result.trace.makespan


def test_attribution_sums_to_makespan_on_full_genomes():
    result, profile = _profile_for(
        lambda o: run_genomes(n_chromosomes=22, observer=o)
    )
    total = sum(profile.attribution.values())
    assert total == pytest.approx(result.trace.makespan, rel=RTOL)
    # 903-task-scale run: the critical path must still be contiguous
    # (Profile validates this on construction; spot-check the ends).
    path = profile.critical_path
    assert path[0].start == pytest.approx(0.0, abs=RTOL)
    assert path[-1].end == pytest.approx(profile.makespan, rel=RTOL)


def test_critical_path_partitions_makespan():
    _, profile = _profile_for(lambda o: run_swarp(observer=o))
    path = profile.critical_path
    for previous, current in zip(path, path[1:]):
        assert current.start == pytest.approx(previous.end, rel=RTOL, abs=RTOL)
    assert all(s.duration >= 0 for s in path)


def test_swarp_critical_path_names_expected_resources():
    _, profile = _profile_for(lambda o: run_swarp(observer=o))
    resources = set(profile.attribution)
    assert "compute" in resources
    assert "stage-in" in resources
    assert any(r.startswith("read:") for r in resources)
    assert any(r.startswith("write:") for r in resources)


def test_queueing_attributed_to_occupying_task():
    """Contended genomes run: queue time threads through the occupant.

    With 22 chromosomes on 8 hosts, tasks queue for cores.  The
    resource-aware walk attributes that time to the occupying tasks'
    compute/reads, so ``wait:cores`` never dominates the attribution
    while per-task breakdowns still expose the queueing.
    """
    obs = Observer()
    result = run_genomes(n_chromosomes=22, observer=obs)
    profile = build_profile(result.trace, observer=obs)
    assert "wait:cores" not in profile.attribution
    queued = [t for t in profile.tasks if t.waits.get("cores", 0.0) > 0]
    assert queued, "expected at least one task to queue for cores"
    assert any(w["cause"] == "cores" for w in profile.waits)


def test_trace_only_profile_marks_waits_unattributed_or_routes_them():
    """Profiling a bare trace (no observer) must still satisfy the
    invariant — resource waits either route through occupants or land
    in the UNATTRIBUTED bucket, never vanish."""
    result = run_swarp(n_pipelines=2)
    profile = build_profile(result.trace)
    total = sum(profile.attribution.values())
    assert total == pytest.approx(result.trace.makespan, rel=RTOL)
    for resource in profile.attribution:
        assert not resource.startswith("wait:") or resource in (
            UNATTRIBUTED,
            "wait:dependency",
        )


def test_task_breakdowns_cover_every_task():
    obs = Observer()
    result = run_swarp(observer=obs)
    profile = build_profile(result.trace, observer=obs)
    assert {t.task for t in profile.tasks} == set(result.trace.records)
    for breakdown in profile.tasks:
        record = result.trace.records[breakdown.task]
        assert breakdown.start == record.start
        assert breakdown.end == record.end
        assert sum(breakdown.phases.values()) == pytest.approx(
            record.end - record.start, rel=1e-9, abs=1e-12
        )


def test_empty_trace_profiles_to_empty_path():
    profile = build_profile(ExecutionTrace("empty"))
    assert profile.makespan == 0.0
    assert profile.critical_path == []
    assert profile.attribution == {}


def test_synthetic_chain_attribution():
    """Hand-built two-task chain: exact, inspectable attribution."""
    trace = ExecutionTrace("chain")
    trace.log(0.0, "task_ready", "a")
    trace.log(0.0, "task_start", "a")
    trace.add_record(
        TaskRecord(
            name="a", group="g", host="cn0", cores=1,
            start=0.0, read_start=0.0, read_end=2.0,
            compute_end=7.0, write_end=8.0, end=8.0,
        )
    )
    trace.log(8.0, "task_ready", "b")
    trace.log(8.0, "task_start", "b")
    trace.add_record(
        TaskRecord(
            name="b", group="g", host="cn0", cores=1,
            start=8.0, read_start=8.0, read_end=9.0,
            compute_end=12.0, write_end=12.0, end=12.0,
        )
    )
    profile = build_profile(trace)
    assert profile.makespan == 12.0
    assert profile.attribution == {"compute": 8.0, "read": 3.0, "write": 1.0}
