"""Diff/explain: detecting critical-path flips between runs."""

import pytest

from repro.profile import Profile, Segment, diff_profiles


def _profile(makespan, pieces):
    segments, cursor = [], 0.0
    for resource, duration in pieces:
        segments.append(Segment(cursor, cursor + duration, resource))
        cursor += duration
    assert cursor == pytest.approx(makespan)
    return Profile("wf", makespan, segments)


def test_flip_detected_and_explained():
    before = _profile(100.0, [("read:pfs", 60.0), ("compute", 40.0)])
    after = _profile(70.0, [("read:bb-striped", 10.0), ("compute", 60.0)])
    diff = diff_profiles(before, after)
    assert diff.dominant_flip
    assert diff.class_flip
    assert diff.before.dominant_class == "pfs"
    assert diff.after.dominant_class == "compute"
    text = diff.explain()
    assert "flipped" in text
    assert "read:pfs" in text and "compute" in text
    assert "pfs-bound to compute-bound" in text


def test_no_flip_reports_stable_dominance():
    before = _profile(100.0, [("compute", 80.0), ("read:pfs", 20.0)])
    after = _profile(90.0, [("compute", 75.0), ("read:pfs", 15.0)])
    diff = diff_profiles(before, after)
    assert not diff.dominant_flip
    assert "still dominated by compute" in diff.explain()


def test_makespan_delta_and_biggest_mover():
    before = _profile(100.0, [("read:pfs", 60.0), ("compute", 40.0)])
    after = _profile(70.0, [("read:bb-striped", 10.0), ("compute", 60.0)])
    diff = diff_profiles(before, after)
    assert diff.makespan_delta == pytest.approx(-30.0)
    assert diff.biggest_mover == "read:pfs"  # 60% -> 0%
    doc = diff.to_doc()
    assert doc["dominant_flip"] is True
    assert doc["shares"]["read:pfs"]["after"] == 0.0


def test_shares_union_covers_both_runs():
    before = _profile(10.0, [("compute", 10.0)])
    after = _profile(10.0, [("write:pfs", 10.0)])
    diff = diff_profiles(before, after)
    assert set(diff.shares) == {"compute", "write:pfs"}
    assert diff.shares["compute"] == (1.0, 0.0)
    assert diff.shares["write:pfs"] == (0.0, 1.0)
