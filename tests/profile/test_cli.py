"""repro-profile CLI: summary, diff, trace input, flamegraph output."""

import json

import pytest

from repro.obs import Observer
from repro.profile import build_profile, write_profile
from repro.profile.cli import load_profile, main
from repro.scenarios import run_swarp


@pytest.fixture(scope="module")
def run_dirs(tmp_path_factory):
    """Two exported run dirs (different staged fractions) + a trace file."""
    base = tmp_path_factory.mktemp("profiles")
    dirs = {}
    for label, fraction in (("a", 0.0), ("b", 1.0)):
        obs = Observer()
        result = run_swarp(input_fraction=fraction, observer=obs)
        profile = build_profile(result.trace, observer=obs)
        directory = base / label
        directory.mkdir()
        write_profile(profile, directory / "profile.json")
        dirs[label] = directory
    trace_path = base / "trace-export.json"
    run_swarp().trace.to_json(trace_path)
    dirs["trace"] = trace_path
    return dirs


def test_single_run_summary(run_dirs, capsys):
    assert main([str(run_dirs["a"])]) == 0
    out = capsys.readouterr().out
    assert "makespan:" in out
    assert "dominant:" in out
    assert "compute" in out


def test_single_run_json(run_dirs, capsys):
    assert main([str(run_dirs["a"]), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.profile/1"
    assert sum(doc["attribution"].values()) == pytest.approx(
        doc["makespan"], rel=1e-9
    )


def test_diff_mode(run_dirs, capsys):
    assert main([str(run_dirs["a"]), str(run_dirs["b"])]) == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "->" in out


def test_diff_json(run_dirs, capsys):
    assert main([str(run_dirs["a"]), str(run_dirs["b"]), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert {"makespan_before", "makespan_after", "shares"} <= set(doc)


def test_trace_input_is_profiled_on_the_fly(run_dirs, capsys):
    assert main([str(run_dirs["trace"])]) == 0
    assert "makespan:" in capsys.readouterr().out


def test_flamegraph_output(run_dirs, tmp_path):
    folded = tmp_path / "profile.folded"
    assert main([str(run_dirs["a"]), "--flamegraph", str(folded)]) == 0
    assert folded.is_file()
    assert all(" " in line for line in folded.read_text().splitlines())


def test_load_profile_rejects_garbage(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"hello": 1}))
    assert main([str(bogus)]) == 1
    assert "repro-profile:" in capsys.readouterr().err
    missing = tmp_path / "nope"
    assert main([str(missing)]) == 1


def test_load_profile_from_directory(run_dirs):
    profile = load_profile(run_dirs["a"])
    assert profile.makespan > 0
