"""Profile model invariants, serialization, and derived views."""

import pytest

from repro.profile import (
    PROFILE_SCHEMA,
    Profile,
    ProfileError,
    Segment,
    TaskBreakdown,
    read_profile,
    resource_class,
    write_profile,
)


def _simple_profile():
    return Profile(
        "wf",
        10.0,
        [
            Segment(0.0, 4.0, "read:pfs", task="a", detail="f.dat"),
            Segment(4.0, 9.0, "compute", task="a"),
            Segment(9.0, 10.0, "write:bb", task="a"),
        ],
        tasks=[
            TaskBreakdown(
                task="a", host="cn0", start=0.0, end=10.0,
                phases={"read:pfs": 4.0, "compute": 5.0, "write:bb": 1.0},
                waits={"cores": 0.5},
            )
        ],
        waits=[{"task": "a", "cause": "cores", "start": 0.0, "end": 0.5,
                "detail": "cn0"}],
    )


def test_attribution_derived_and_summing():
    profile = _simple_profile()
    assert profile.attribution == {
        "read:pfs": 4.0, "compute": 5.0, "write:bb": 1.0
    }
    assert sum(profile.attribution.values()) == profile.makespan
    assert profile.dominant_resource == "compute"
    assert profile.shares["compute"] == pytest.approx(0.5)


def test_non_contiguous_path_raises():
    with pytest.raises(ProfileError, match="contiguous"):
        Profile("wf", 10.0, [Segment(0.0, 4.0, "a"), Segment(5.0, 10.0, "b")])


def test_path_not_reaching_makespan_raises():
    with pytest.raises(ProfileError, match="makespan"):
        Profile("wf", 10.0, [Segment(0.0, 9.0, "a")])


def test_negative_segment_raises():
    with pytest.raises(ProfileError, match="negative"):
        Profile("wf", 1.0, [Segment(1.0, 0.0, "a"), Segment(0.0, 1.0, "b")])


def test_round_trip_through_doc(tmp_path):
    profile = _simple_profile()
    path = write_profile(profile, tmp_path / "profile.json")
    loaded = read_profile(path)
    assert loaded.to_doc() == profile.to_doc()
    assert loaded.attribution == profile.attribution
    assert loaded.makespan == profile.makespan
    assert loaded.breakdown_for("a").waits == {"cores": 0.5}


def test_from_doc_rejects_wrong_schema():
    doc = _simple_profile().to_doc()
    doc["schema"] = "repro.profile/999"
    with pytest.raises(ProfileError, match="schema"):
        Profile.from_doc(doc)


def test_from_doc_rejects_tampered_attribution():
    doc = _simple_profile().to_doc()
    doc["attribution"]["compute"] = 99.0
    with pytest.raises(ProfileError, match="disagrees"):
        Profile.from_doc(doc)


def test_schema_tag():
    assert _simple_profile().to_doc()["schema"] == PROFILE_SCHEMA == "repro.profile/1"


def test_resource_classes():
    assert resource_class("compute") == "compute"
    assert resource_class("read:pfs") == "pfs"
    assert resource_class("write:pfs") == "pfs"
    assert resource_class("stage-in") == "pfs"
    assert resource_class("stage-out") == "pfs"
    assert resource_class("read:bb-striped") == "bb"
    assert resource_class("write:bb-local:cn0-bb") == "bb"
    assert resource_class("wait:cores") == "wait"
    assert resource_class("idle") == "idle"


def test_dominant_class_collapses_resources():
    profile = Profile(
        "wf",
        10.0,
        [
            Segment(0.0, 3.0, "read:pfs"),
            Segment(3.0, 6.0, "stage-in"),
            Segment(6.0, 10.0, "compute"),
        ],
    )
    # pfs class: 3 + 3 = 6 > compute's 4, even though compute is the
    # largest single resource.
    assert profile.dominant_resource == "compute"
    assert profile.dominant_class == "pfs"
