"""Tests for smaller surfaces not covered elsewhere."""

import pytest

from repro import des
from repro.scenarios import run_swarp
from repro.storage import BBMode


def test_pipeline_makespan_excludes_stage_in():
    result = run_swarp(
        system="cori",
        bb_mode=BBMode.PRIVATE,
        input_fraction=1.0,
        n_pipelines=2,
        include_stage_in=True,
        emulated=True,
        seed=None,
    )
    stage = result.trace.task_record("stage_in")
    assert stage.duration > 0
    assert result.pipeline_makespan < result.makespan
    assert result.pipeline_makespan == pytest.approx(
        result.makespan - stage.duration, rel=1e-6
    )


def test_pipeline_makespan_empty_workflow():
    from repro.compute import ComputeService
    from repro.platform import Platform
    from repro.platform.presets import cori_spec
    from repro.scenarios import ScenarioResult
    from repro.storage import ParallelFileSystem
    from repro.wms import WorkflowEngine
    from repro.workflow import Workflow

    env = des.Environment()
    plat = Platform(env, cori_spec())
    wf = Workflow("empty", [])
    engine = WorkflowEngine(
        plat, wf, ComputeService(plat, ["cn0"]), ParallelFileSystem(plat)
    )
    trace = engine.run()
    result = ScenarioResult(trace=trace, platform=plat, engine=engine, workflow=wf)
    assert result.pipeline_makespan == 0.0


def test_engine_run_until_partial():
    """run(until=t) stops the clock mid-execution; the trace holds the
    events so far."""
    from repro.compute import ComputeService
    from repro.platform import Platform
    from repro.platform.presets import TABLE_I, cori_spec
    from repro.storage import ParallelFileSystem
    from repro.wms import WorkflowEngine
    from repro.workflow import Task, Workflow

    env = des.Environment()
    plat = Platform(env, cori_spec())
    wf = Workflow(
        "long", [Task("t", flops=100 * TABLE_I["cori"]["core_speed"], cores=1)]
    )
    engine = WorkflowEngine(
        plat, wf, ComputeService(plat, ["cn0"]), ParallelFileSystem(plat),
        host_assignment=lambda t: "cn0",
    )
    trace = engine.run(until=5.0)
    assert env.now == 5.0
    assert "t" not in trace.records  # still computing


def test_wfformat_zero_cores_falls_back_to_default():
    from repro.workflow.wfformat import workflow_from_wfformat

    doc = {
        "name": "w",
        "workflow": {
            "tasks": [
                {
                    "name": "t",
                    "runtimeInSeconds": 1.0,
                    "cores": 0,
                    "files": [],
                    "parents": [],
                }
            ]
        },
    }
    wf = workflow_from_wfformat(doc, default_cores=4)
    assert wf.task("t").cores == 4


def test_route_latency_paid_by_scenarios():
    """Fabric latencies exist in the presets and are non-negative."""
    from repro.platform import Platform
    from repro.platform.presets import summit_spec

    env = des.Environment()
    plat = Platform(env, summit_spec(n_compute=2))
    route = plat.route("cn0", "cn1")
    assert route.latency > 0


def test_scenario_mean_duration_unknown_group():
    result = run_swarp(n_pipelines=1)
    with pytest.raises(KeyError):
        result.mean_duration("nonexistent")


def test_simulator_config_defaults():
    from repro.simulator import SimulatorConfig
    from repro.storage import BBMode as Mode

    config = SimulatorConfig()
    assert config.bb_mode == Mode.STRIPED
    assert config.input_fraction == 1.0
    assert config.output_fraction == 0.0
