"""Determinism regression: the property the lint rules protect.

Running the same scenario with the same seed twice must produce bitwise
identical results — same makespan, same number of events, same event
sequence.  If this test starts failing, something nondeterministic
(wall clock, global RNG, hash-ordered iteration) crept into the
simulation path; ``python -m repro.lint src/`` should point at it.
"""

from __future__ import annotations

from repro.scenarios import run_swarp
from repro.storage import BBMode


def _run_once(seed: int):
    return run_swarp(
        system="cori",
        bb_mode=BBMode.PRIVATE,
        input_fraction=0.5,
        n_pipelines=2,
        cores_per_task=4,
        emulated=True,
        seed=seed,
    )


def test_same_seed_same_trace():
    first = _run_once(seed=7)
    second = _run_once(seed=7)
    assert first.makespan == second.makespan
    assert len(first.trace.events) == len(second.trace.events)
    assert [
        (e.time, e.kind, e.task) for e in first.trace.events
    ] == [(e.time, e.kind, e.task) for e in second.trace.events]


def test_different_seed_different_noise():
    # Sanity check that the seed actually reaches the noise model.
    assert _run_once(seed=1).makespan != _run_once(seed=2).makespan


def test_simple_model_deterministic_without_seed():
    # The non-emulated simulator has no stochastic inputs at all.
    a = run_swarp(system="summit", input_fraction=1.0, cores_per_task=8)
    b = run_swarp(system="summit", input_fraction=1.0, cores_per_task=8)
    assert a.makespan == b.makespan
    assert len(a.trace.events) == len(b.trace.events)
