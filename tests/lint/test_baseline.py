"""Baseline (suppression) file: fingerprints, round-trip, unused-entry
reporting."""

from __future__ import annotations

from repro.lint.baseline import Baseline, fingerprint, write_baseline
from repro.lint.diagnostics import Diagnostic, Severity


def diag(rule_id="SIM101", path="src/a.py", line=3, message="unsorted listing"):
    return Diagnostic(
        path=path, line=line, col=1, rule_id=rule_id, message=message,
        severity=Severity.ERROR,
    )


def test_fingerprint_is_line_number_independent():
    assert fingerprint(diag(line=3)) == fingerprint(diag(line=99))
    assert fingerprint(diag(message="a")) != fingerprint(diag(message="b"))
    assert fingerprint(diag(rule_id="SIM101")) != fingerprint(diag(rule_id="SIM103"))


def test_write_then_load_round_trip(tmp_path):
    diags = [diag(), diag(rule_id="SIM201", path="src/b.py", message="bytes + seconds")]
    baseline_file = tmp_path / ".repro-lint-baseline"
    assert write_baseline(diags, baseline_file) == 2

    baseline = Baseline.load(baseline_file)
    assert baseline.filter(diags) == []
    assert baseline.unused() == []


def test_unbaselined_finding_passes_through(tmp_path):
    baseline_file = tmp_path / ".repro-lint-baseline"
    write_baseline([diag()], baseline_file)

    baseline = Baseline.load(baseline_file)
    fresh = diag(message="a brand-new finding")
    assert baseline.filter([diag(), fresh]) == [fresh]


def test_unused_entries_reported(tmp_path):
    baseline_file = tmp_path / ".repro-lint-baseline"
    write_baseline([diag(), diag(path="src/gone.py")], baseline_file)

    baseline = Baseline.load(baseline_file)
    baseline.filter([diag()])
    unused = baseline.unused()
    assert len(unused) == 1
    assert unused[0][1] == "src/gone.py"


def test_written_file_has_rationale_placeholders(tmp_path):
    baseline_file = tmp_path / ".repro-lint-baseline"
    write_baseline([diag()], baseline_file)
    text = baseline_file.read_text()
    assert "# TODO: justify or fix" in text
    assert "SIM101 src/a.py" in text


def test_missing_file_is_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "nope")
    assert baseline.filter([diag()]) == [diag()]
