"""Tier-1 gate: the repository's own source tree lints clean.

This is what turns the rules from advisory into enforced — any new
wall-clock call, global-RNG draw, raw magnitude, or DES-hygiene slip
in ``src/`` fails the test suite, not just a separate CI step.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import Baseline, Checker
from repro.lint.semantic import SemanticAnalyzer

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / ".repro-lint-baseline"


def test_src_tree_lints_clean():
    src = REPO_ROOT / "src"
    assert src.is_dir(), f"source tree not found at {src}"
    diagnostics = Checker().check_paths([src])
    assert diagnostics == [], "\n" + "\n".join(d.render() for d in diagnostics)


def test_src_tree_semantic_clean_modulo_baseline():
    """Whole-program gate: zero unbaselined SIM1xx/SIM2xx findings."""
    src = REPO_ROOT / "src"
    result = SemanticAnalyzer().analyze_paths([src])
    baseline = Baseline.load(BASELINE)
    fresh = baseline.filter(result.diagnostics)
    assert fresh == [], "\n" + "\n".join(d.render() for d in fresh)


def test_baseline_has_no_stale_entries():
    """Every committed baseline entry must still match a real finding."""
    src = REPO_ROOT / "src"
    result = SemanticAnalyzer().analyze_paths([src])
    baseline = Baseline.load(BASELINE)
    baseline.filter(result.diagnostics)
    assert baseline.unused() == [], baseline.unused()
