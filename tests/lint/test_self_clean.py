"""Tier-1 gate: the repository's own source tree lints clean.

This is what turns the rules from advisory into enforced — any new
wall-clock call, global-RNG draw, raw magnitude, or DES-hygiene slip
in ``src/`` fails the test suite, not just a separate CI step.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import Checker

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_lints_clean():
    src = REPO_ROOT / "src"
    assert src.is_dir(), f"source tree not found at {src}"
    diagnostics = Checker().check_paths([src])
    assert diagnostics == [], "\n" + "\n".join(d.render() for d in diagnostics)
