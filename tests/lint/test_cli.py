"""CLI behaviour: exit codes, selection flags, and output formats."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "sim001_bad.py")
GOOD = str(FIXTURES / "sim001_good.py")


def test_exit_zero_on_clean_file(capsys):
    assert main([GOOD]) == 0
    assert capsys.readouterr().out == ""


def test_exit_one_on_findings(capsys):
    assert main([BAD]) == 1
    out = capsys.readouterr().out
    assert "SIM001" in out
    assert "sim001_bad.py" in out


def test_text_format_has_locations(capsys):
    main(["--select", "SIM001", BAD])
    first = capsys.readouterr().out.splitlines()[0]
    # path:line:col: ID [severity] message
    assert first.startswith(BAD + ":")
    line, col = first[len(BAD) + 1 :].split(":")[:2]
    assert line.isdigit() and col.isdigit()


def test_json_format_round_trips(capsys):
    assert main(["--format", "json", BAD]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert isinstance(payload, list) and payload
    for entry in payload:
        assert entry["rule"] == "SIM001"
        assert entry["path"].endswith("sim001_bad.py")
        assert isinstance(entry["line"], int) and entry["line"] >= 1
        assert entry["severity"] in ("error", "warning")
        assert entry["message"]


def test_json_format_empty_list_when_clean(capsys):
    assert main(["--format", "json", GOOD]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_select_excludes_other_rules(capsys):
    assert main(["--select", "SIM030", BAD]) == 0


def test_ignore_suppresses_rule(capsys):
    assert main(["--ignore", "SIM001", BAD]) == 0


def test_comma_separated_ids(capsys):
    assert main(["--select", "SIM001,SIM030", BAD]) == 1


def test_unknown_rule_id_is_usage_error(capsys):
    assert main(["--select", "SIM404", BAD]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_list_rules_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SIM001", "SIM010", "SIM020", "SIM030"):
        assert rule_id in out


def test_module_entry_point():
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", GOOD],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
