"""Incremental-analysis cache: warm runs must equal cold runs, and an
edit must re-analyze exactly the changed file plus its reverse-dependency
closure."""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.lint.semantic import SemanticAnalyzer
from repro.lint.semantic.cache import CACHE_FILENAME

FIXTURES = Path(__file__).parent / "fixtures" / "semantic"


def make_project(tmp_path: Path) -> Path:
    project = tmp_path / "proj"
    shutil.copytree(FIXTURES / "taintpkg", project / "taintpkg")
    shutil.copy(FIXTURES / "fs_bad.py", project / "fs_bad.py")
    return project


def render_all(diags):
    return "\n".join(d.render() for d in diags)


def test_warm_run_equals_cold_run(tmp_path):
    project = make_project(tmp_path)
    cache_dir = tmp_path / "cache"

    cold = SemanticAnalyzer(cache_dir=str(cache_dir)).analyze_paths([str(project)])
    assert (cache_dir / CACHE_FILENAME).exists()
    assert cold.from_cache == []

    warm = SemanticAnalyzer(cache_dir=str(cache_dir)).analyze_paths([str(project)])
    assert warm.analyzed == []  # nothing changed, nothing re-parsed
    assert render_all(warm.diagnostics) == render_all(cold.diagnostics)
    assert [d.to_dict() for d in warm.diagnostics] == [d.to_dict() for d in cold.diagnostics]


def test_edit_reanalyzes_reverse_closure_only(tmp_path):
    project = make_project(tmp_path)
    cache_dir = tmp_path / "cache"

    SemanticAnalyzer(cache_dir=str(cache_dir)).analyze_paths([str(project)])

    # touch the leaf module: its dependents (middle, sink, clean) must be
    # re-analyzed; the unrelated fs_bad.py must come from cache.
    collectors = project / "taintpkg" / "collectors.py"
    collectors.write_text(collectors.read_text() + "\n# touched\n")

    warm = SemanticAnalyzer(cache_dir=str(cache_dir)).analyze_paths([str(project)])
    analyzed = {Path(p).name for p in warm.analyzed}
    assert "collectors.py" in analyzed
    assert {"middle.py", "sink.py", "clean.py"} <= analyzed
    assert "fs_bad.py" not in analyzed
    assert any(Path(p).name == "fs_bad.py" for p in warm.from_cache)


def test_incremental_output_matches_fresh_analysis(tmp_path):
    project = make_project(tmp_path)
    cache_dir = tmp_path / "cache"
    analyzer = SemanticAnalyzer(cache_dir=str(cache_dir))
    analyzer.analyze_paths([str(project)])

    # fix the seeded bug: sort at the source
    collectors = project / "taintpkg" / "collectors.py"
    collectors.write_text(
        collectors.read_text().replace("for name in names:", "for name in sorted(names):")
    )

    warm = SemanticAnalyzer(cache_dir=str(cache_dir)).analyze_paths([str(project)])
    fresh = SemanticAnalyzer().analyze_paths([str(project)])
    assert render_all(warm.diagnostics) == render_all(fresh.diagnostics)
    # the SIM100 through sink.py is gone once the source is sorted
    assert not any(d.rule_id == "SIM100" for d in warm.diagnostics)


def test_edit_downstream_keeps_upstream_cached(tmp_path):
    project = make_project(tmp_path)
    cache_dir = tmp_path / "cache"
    SemanticAnalyzer(cache_dir=str(cache_dir)).analyze_paths([str(project)])

    sink = project / "taintpkg" / "sink.py"
    sink.write_text(sink.read_text() + "\n# touched\n")

    warm = SemanticAnalyzer(cache_dir=str(cache_dir)).analyze_paths([str(project)])
    analyzed = {Path(p).name for p in warm.analyzed}
    # sink has no project dependents: only it is re-analyzed
    assert analyzed == {"sink.py"}
    # ... and the cross-module finding survives, seeded by cached summaries
    assert any(d.rule_id == "SIM100" for d in warm.diagnostics)


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    project = make_project(tmp_path)
    cache_dir = tmp_path / "cache"
    cold = SemanticAnalyzer(cache_dir=str(cache_dir)).analyze_paths([str(project)])

    (cache_dir / CACHE_FILENAME).write_text("{not json")
    recovered = SemanticAnalyzer(cache_dir=str(cache_dir)).analyze_paths([str(project)])
    assert render_all(recovered.diagnostics) == render_all(cold.diagnostics)
    assert recovered.from_cache == []
