"""Git-aware ``--changed`` mode: changed files plus their reverse-
dependency closure, with graceful fallback outside a checkout."""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.semantic.changed import (
    changed_python_files,
    expand_with_dependents,
    git_repo_root,
)


def git(*argv, cwd):
    subprocess.run(
        ["git", *argv],
        cwd=cwd,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(cwd),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture
def repo(tmp_path):
    """A git repo with a 3-module chain: app -> midlayer -> base."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "base.py").write_text("def width():\n    return 1\n")
    (pkg / "midlayer.py").write_text(
        "from pkg.base import width\n\ndef padded():\n    return width() + 1\n"
    )
    (pkg / "app.py").write_text(
        "from pkg.midlayer import padded\n\ndef render():\n    return padded()\n"
    )
    (pkg / "unrelated.py").write_text("def other():\n    return 0\n")
    git("init", "-q", cwd=tmp_path)
    git("add", "-A", cwd=tmp_path)
    git("commit", "-q", "-m", "seed", cwd=tmp_path)
    return tmp_path


def test_changed_files_empty_when_clean(repo):
    assert changed_python_files("HEAD", repo) == []


def test_changed_files_lists_edits_and_untracked(repo):
    (repo / "pkg" / "base.py").write_text("def width():\n    return 2\n")
    (repo / "pkg" / "fresh.py").write_text("x = 1\n")
    changed = changed_python_files("HEAD", repo)
    names = sorted(p.name for p in changed)
    assert names == ["base.py", "fresh.py"]


def test_reverse_closure_includes_transitive_importers(repo):
    changed = [repo / "pkg" / "base.py"]
    closure = expand_with_dependents([repo / "pkg"], changed)
    names = sorted(Path(p).name for p in closure)
    # base itself, its importer, and its importer's importer — not the
    # unrelated module
    assert names == ["app.py", "base.py", "midlayer.py"]


def test_unresolvable_base_returns_none(repo):
    assert changed_python_files("no-such-ref", repo) is None


def test_git_repo_root(repo, tmp_path):
    assert git_repo_root(repo) == repo.resolve()
    outside = tmp_path / "outside"
    outside.mkdir()
    # root lookup from a non-repo dir: our tmp dir has a repo at repo/,
    # so probe a subprocess-level failure instead via a bogus path
    assert git_repo_root("/nonexistent-dir-for-lint-test") is None


def test_cli_changed_restricts_reporting(repo, monkeypatch, capsys):
    # introduce a wall-clock finding in base.py (SIM001 territory) and
    # an unrelated finding elsewhere; --changed HEAD must surface only
    # the closure of the edited file
    (repo / "pkg" / "base.py").write_text(
        "import time\n\ndef width():\n    return time.time()\n"
    )
    (repo / "pkg" / "unrelated.py").write_text(
        "import time\n\ndef other():\n    return time.time()\n"
    )
    git("add", "-A", cwd=repo)
    git("commit", "-q", "-m", "both dirty", cwd=repo)
    # now edit only base.py again
    (repo / "pkg" / "base.py").write_text(
        "import time\n\ndef width():\n    return time.time() + 1\n"
    )
    monkeypatch.chdir(repo)
    exit_code = main(["--changed", "HEAD", "--select", "SIM001", str(repo / "pkg")])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "base.py" in out
    assert "unrelated.py" not in out


def test_cli_changed_clean_tree_reports_nothing(repo, monkeypatch, capsys):
    monkeypatch.chdir(repo)
    assert main(["--changed", "HEAD", str(repo / "pkg")]) == 0
    assert capsys.readouterr().out == ""


def test_cli_changed_outside_git_falls_back(tmp_path, monkeypatch, capsys):
    target = tmp_path / "loose.py"
    target.write_text("import time\nx = time.time()\n")
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(
        "repro.lint.semantic.changed.git_repo_root", lambda start=None: None
    )
    exit_code = main(["--changed", "HEAD", "--select", "SIM001", str(target)])
    captured = capsys.readouterr()
    assert exit_code == 1  # fell back to linting everything
    assert "linting everything" in captured.err
