"""Suppression semantics: line pragmas, file pragmas, scoping."""

from __future__ import annotations

from repro.lint import Checker
from repro.lint.pragmas import Pragmas

WALL_CLOCK = "import time\n\nstart = time.time(){pragma}\n"


def _lint(source: str):
    return Checker(select=["SIM001"]).check_source(source)


def test_unsuppressed_finding_fires():
    assert len(_lint(WALL_CLOCK.format(pragma=""))) == 1


def test_line_pragma_with_matching_rule():
    source = WALL_CLOCK.format(pragma="  # lint: ignore[SIM001] - harness timing")
    assert _lint(source) == []


def test_line_pragma_with_other_rule_does_not_suppress():
    source = WALL_CLOCK.format(pragma="  # lint: ignore[SIM030]")
    assert len(_lint(source)) == 1


def test_bare_line_pragma_suppresses_everything():
    source = WALL_CLOCK.format(pragma="  # lint: ignore")
    assert _lint(source) == []


def test_line_pragma_only_covers_its_own_line():
    source = (
        "import time\n"
        "# lint: ignore[SIM001]\n"
        "start = time.time()\n"
    )
    assert len(_lint(source)) == 1


def test_file_pragma_suppresses_whole_file():
    source = (
        "# lint: ignore-file[SIM001] - fixture exercising the wall clock\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    assert _lint(source) == []


def test_file_pragma_lists_multiple_rules():
    pragmas = Pragmas.scan("# lint: ignore-file[SIM001, SIM010]\n")
    assert pragmas.suppresses("SIM001", 99)
    assert pragmas.suppresses("SIM010", 1)
    assert not pragmas.suppresses("SIM030", 1)


def test_multi_rule_line_pragma():
    pragmas = Pragmas.scan("x = 1  # lint: ignore[SIM010,SIM011]\n")
    assert pragmas.suppresses("SIM010", 1)
    assert pragmas.suppresses("SIM011", 1)
    assert not pragmas.suppresses("SIM001", 1)


def test_multi_rule_pragma_with_spaces_and_cli_spelling():
    source = WALL_CLOCK.format(pragma="  # repro-lint: ignore[SIM001, SIM100]")
    assert _lint(source) == []


def test_unknown_rule_id_in_pragma_reported_as_sim998():
    source = WALL_CLOCK.format(pragma="  # lint: ignore[SIM001, SIM777]")
    diagnostics = Checker().check_source(source)
    assert [d.rule_id for d in diagnostics] == ["SIM998"]
    assert "SIM777" in diagnostics[0].message
    assert diagnostics[0].line == 3


def test_lowercase_rule_id_typo_is_flagged_not_silently_honored():
    # historical footgun: `ignore[sim001]` used to fail the bracket
    # match and act as a suppress-everything bare pragma
    source = WALL_CLOCK.format(pragma="  # lint: ignore[sim001]")
    diagnostics = Checker().check_source(source)
    rule_ids = sorted(d.rule_id for d in diagnostics)
    assert "SIM998" in rule_ids  # the typo itself is reported
    assert "SIM001" in rule_ids  # ... and nothing got suppressed


def test_sim998_is_itself_suppressible():
    source = WALL_CLOCK.format(
        pragma="  # lint: ignore[SIM001, SIM777]  # lint: ignore[SIM998]"
    )
    diagnostics = Checker().check_source(source)
    assert diagnostics == []


def test_ignoring_sim998_disables_pragma_validation():
    source = WALL_CLOCK.format(pragma="  # lint: ignore[SIM001, SIM777]")
    diagnostics = Checker(ignore=["SIM998"]).check_source(source)
    assert diagnostics == []


def test_unknown_rule_ids_sorted_and_deduplicated():
    pragmas = Pragmas.scan(
        "a = 1  # lint: ignore[SIMX, SIMA]\n"
        "b = 2  # lint: ignore[SIMX]\n"
    )
    assert pragmas.unknown_rule_ids({"SIM001"}) == [
        (1, "SIMA"), (1, "SIMX"), (2, "SIMX"),
    ]
