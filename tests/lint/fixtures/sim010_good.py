"""Known-good: magnitudes expressed through the units vocabulary."""

from repro.platform.units import GB, GFLOPS, MB, TB, parse_size

PFS_BANDWIDTH = 100 * MB
bb_capacity = 6.4 * TB
staged_bytes = parse_size("52 GB")


def make_disk(spec_cls):
    return spec_cls(
        name="ssd",
        read_bandwidth=950 * MB,
        capacity=1.6 * TB,
    )


TABLE = {
    "core_speed": 36.8 * GFLOPS,
    "pfs_network_bandwidth": 1.0 * GB,
    "n_nodes": 9688,
}
