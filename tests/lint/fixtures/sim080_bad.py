"""Known-bad: ad-hoc output channels in a simulator subsystem."""
import logging  # expect[SIM080]
import sys
import warnings

from logging import getLogger  # expect[SIM080]

log = logging.getLogger(__name__)  # expect[SIM080]


def transfer(flow):
    logging.info("flow %s started", flow)  # expect[SIM080]
    warnings.warn("link oversubscribed")  # expect[SIM080]
    sys.stderr.write(f"flow {flow} done\n")  # expect[SIM080]
    sys.stdout.write("progress: 50%\n")  # expect[SIM080]
    print("finished", file=sys.stderr)  # expect[SIM080]
    return flow
