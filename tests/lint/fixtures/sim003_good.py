"""Known-good: explicit ordering before any scheduling decision."""


def schedule_ready(ready_names, start_task):
    for name in sorted(set(ready_names)):
        start_task(name)


def next_task(queue):
    return min(queue.items(), key=lambda kv: (kv[1], kv[0]))


def all_done(task_done_events):
    # Materializing a dict view into a list is not a tie-break.
    return list(task_done_events.values())
