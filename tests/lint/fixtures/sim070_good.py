"""Known-good: wait-cause hooks pass closed WaitCause members."""

from repro.obs import WaitCause
from repro.obs.waits import WaitCause as Cause


def run_task(env, task):
    obs = env.obs
    if obs is not None:
        obs.on_task_blocked(task.name, WaitCause.CORES, detail="cn0")
    yield env.timeout(1.0)
    obs = env.obs
    if obs is not None:
        obs.on_task_unblocked(task.name, WaitCause.CORES)


def aliased_import(env, task):
    env.obs.on_task_blocked(task.name, cause=Cause.BB_CAPACITY)
    env.obs.on_task_unblocked(task.name, cause=Cause.BB_CAPACITY)
