"""Known-bad: non-generators handed to env.process (SIM020)."""


def run_transfer(env, flow):
    def body():
        flow.start()
        return flow.wait()

    env.process(body())  # expect[SIM020]
    env.process(body)  # expect[SIM020]
    env.process(lambda: flow.wait())  # expect[SIM020]


class Service:
    def _drain(self, queue):
        queue.pop()

    def start(self, env, queue):
        env.process(self._drain(queue))  # expect[SIM020]
