"""Known-good: fan-out through the sweep engine; threads stay legal."""

from concurrent.futures import ThreadPoolExecutor

from repro.sweep import SweepSpec, run_sweep


def fan_out(points):
    spec = SweepSpec(
        sweep_id="demo",
        func="demo.points:compute",
        points=tuple(points),
    )
    return run_sweep(spec, workers=4)


def overlap_io(fetch, urls):
    # Thread pools don't fork the interpreter; they are not SIM050's
    # concern (no pickling, no per-process RNG/caches to diverge).
    with ThreadPoolExecutor() as pool:
        return list(pool.map(fetch, urls))
