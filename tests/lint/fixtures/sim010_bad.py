"""Known-bad: raw magnitudes where unit constants belong (SIM010)."""

PFS_BANDWIDTH = 100000000  # expect[SIM010]
bb_capacity = 6.4e12  # expect[SIM010]


def make_disk(spec_cls):
    return spec_cls(
        name="ssd",
        read_bandwidth=950e6,  # expect[SIM010]
        capacity=1600000000000,  # expect[SIM010]
    )


TABLE = {
    "core_speed": 3.68e10,  # expect[SIM010]
    "n_nodes": 9688,
}
