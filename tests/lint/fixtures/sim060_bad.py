"""Known-bad: direct fair-share solver use outside network/perf (SIM060)."""

from repro.network import fairshare
from repro.network.fairshare import max_min_fair_rates  # expect[SIM060]


def schedule_transfers(flow_links, capacities):
    # Hard-codes the sharing discipline: no config/CLI can A/B it.
    return max_min_fair_rates(flow_links, capacities)  # expect[SIM060]


def rates_via_module(flow_links, capacities):
    return fairshare.max_min_fair_rates(flow_links, capacities)  # expect[SIM060]
