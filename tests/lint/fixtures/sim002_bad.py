"""Known-bad: draws from the process-global RNG (SIM002)."""

import random

import numpy as np


def jitter(values):
    random.shuffle(values)  # expect[SIM002]
    return values[0] + random.random()  # expect[SIM002]


def noise(n):
    np.random.seed(42)  # expect[SIM002]
    return np.random.rand(n)  # expect[SIM002]
