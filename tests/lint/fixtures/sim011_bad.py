"""Known-bad: +/- across decimal/binary unit families (SIM011)."""

from repro.platform.units import GB, GiB, MB, MiB

image_footprint = 16 * 32 * MiB + 16 * 16 * MB  # expect[SIM011]


def headroom(used_gib):
    return 6.5 * GB - used_gib * GiB  # expect[SIM011]
