"""Known-bad: ad-hoc worker processes outside repro.sweep (SIM050)."""

import multiprocessing  # expect[SIM050]
from concurrent.futures import ProcessPoolExecutor


def fan_out(points, compute):
    with ProcessPoolExecutor(max_workers=4) as pool:  # expect[SIM050]
        return list(pool.map(compute, points))


def fork_workers(target):
    worker = multiprocessing.Process(target=target)  # expect[SIM050]
    worker.start()
    return worker
