"""Known-bad: per-event container allocation in a hot-path module (SIM061)."""
# lint: hot-path


def drain_events(queue, handlers):
    while queue:
        event = queue.pop()
        targets = [h for h in handlers if h.wants(event)]  # expect[SIM061]
        ctx = {"event": event, "time": event.time}  # expect[SIM061]
        for handler in targets:
            handler(ctx)


def rebuild_index(flows):
    index = {}
    for flow in flows:
        index[flow.fid] = list(flow.links)  # expect[SIM061]
        seen = set()  # expect[SIM061]
        for link in flow.links:
            seen.add(link)
    return index
