"""Known-good: None defaults, immutable defaults, default_factory."""

from dataclasses import dataclass, field
from typing import Optional


def run_batch(jobs, completed: Optional[list] = None):
    completed = [] if completed is None else completed
    completed.extend(jobs)
    return completed


def configure(overrides=None, tags: tuple = ()):
    return overrides or {}, tags


@dataclass
class Config:
    hosts: list = field(default_factory=list)
