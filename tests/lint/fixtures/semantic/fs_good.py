"""SIM101 sanitizers: sorted() wrap and the order-insensitive count."""

from pathlib import Path


def trace_files(directory):
    out = []
    for path in sorted(Path(directory).iterdir()):
        out.append(path.name)
    return out


def trace_count(directory):
    return sum(1 for _ in Path(directory).glob("*.json"))
