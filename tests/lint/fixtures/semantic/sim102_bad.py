"""SIM102 true positive: tie-break keyed on id()."""


def pick_order(tasks):
    return sorted(tasks, key=id)


def pick_order_lambda(tasks):
    return sorted(tasks, key=lambda task: id(task))
