"""SIM102 clean: tie-break on a stable attribute."""


def pick_order(tasks):
    return sorted(tasks, key=lambda task: task.name)
