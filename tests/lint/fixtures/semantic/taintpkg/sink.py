"""Sink module: the tainted ordering reaches the event heap."""

import heapq

from .middle import ready_queue


def schedule_all(event_heap):
    for seq, name in enumerate(ready_queue()):
        heapq.heappush(event_heap, (seq, name))
