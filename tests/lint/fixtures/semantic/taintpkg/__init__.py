"""Fixture package: a seeded cross-module nondeterminism bug.

``collectors`` iterates a set (the source), ``middle`` launders nothing
while passing the value along, and ``sink`` feeds it to the event heap
— so the taint travels two call-graph hops before reaching a
DES-visible sink.  ``clean`` is the same shape with ``sorted()``
pinning the order, proving the sanitizer path.
"""
