"""Sanitizer pattern: sorted() pins the order before the sink."""

import heapq

from .middle import ready_queue


def schedule_sorted(event_heap):
    for seq, name in enumerate(sorted(ready_queue())):
        heapq.heappush(event_heap, (seq, name))
