"""Pass-through module: one extra call-graph hop, no laundering."""

from taintpkg.collectors import discovered_tasks


def ready_queue():
    return list(discovered_tasks())
