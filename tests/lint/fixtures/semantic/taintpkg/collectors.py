"""Source module: set iteration order leaks into a returned list."""


def discovered_tasks():
    names = {"merge", "align", "filter", "stage"}
    out = []
    for name in names:  # PYTHONHASHSEED-dependent order
        out.append(name)
    return out
