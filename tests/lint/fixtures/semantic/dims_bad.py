"""SIM201/SIM202 true positives: dimension mixups a type checker
cannot see (everything is float)."""

from repro.platform.units import GiB, HOUR, MB


def transfer_time(size_bytes, bandwidth):
    return size_bytes / bandwidth


def mixed_budget():
    total_bytes = 3 * GiB
    return total_bytes + HOUR  # bytes + seconds


def compare_wrong(makespan):
    limit_bytes = 10 * MB
    return makespan > limit_bytes  # seconds vs bytes


def bare_literals():
    return transfer_time(3000000, 6.5e9)  # magnitudes without units
