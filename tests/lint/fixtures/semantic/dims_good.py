"""SIM201/SIM202 clean: units vocabulary + consistent dimensions."""

from repro.platform.units import GB, MB


def transfer_time(size_bytes, bandwidth):
    return size_bytes / bandwidth


def staged_budget(makespan, stage_duration):
    return makespan + stage_duration  # seconds + seconds


def from_units():
    return transfer_time(3 * MB, 6.5 * GB)
