"""SIM103 clean: reductions over sorted input."""


def total_weight(weights):
    rounded = {round(w, 6) for w in weights}
    return sum(sorted(rounded))


def joined_names():
    return ",".join(sorted({"a", "b", "c"}))
