"""SIM101 true positive: directory enumeration iterated unsorted."""

from pathlib import Path


def trace_files(directory):
    out = []
    for path in Path(directory).iterdir():
        out.append(path.name)
    return out
