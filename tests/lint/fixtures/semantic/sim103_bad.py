"""SIM103 true positives: order-sensitive reductions over sets."""


def total_weight(weights):
    rounded = {round(w, 6) for w in weights}
    return sum(rounded)


def joined_names():
    return ",".join({"a", "b", "c"})
