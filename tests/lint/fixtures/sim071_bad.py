"""Known-bad: queue-policy select() emits telemetry (SIM071)."""

from repro.obs import WaitCause
from repro.wms.policies import QueuePolicy


class ChattyPolicy(QueuePolicy):
    name = "chatty"

    def select(self, queue, free, now, running):
        picks = []
        for index, request in enumerate(queue):
            if request.amount <= free:
                picks.append(index)
                free -= request.amount
            else:
                # Double-counts the wait: the allocator already
                # reported it when the request queued.
                self.obs.on_task_blocked(request.tag, WaitCause.CORES)  # expect[SIM071]
        return picks


class LoggingBackfill(QueuePolicy):
    name = "logging-backfill"

    def select(self, queue, free, now, running):
        self.obs.log_event("wms", "select", depth=len(queue))  # expect[SIM071]
        granted = [i for i, r in enumerate(queue) if r.amount <= free]
        for index in granted:
            self.obs.on_task_unblocked(queue[index].tag, WaitCause.CORES)  # expect[SIM071]
            self.obs.on_bb_lease("granted", job=queue[index].tag)  # expect[SIM071]
        return granted
