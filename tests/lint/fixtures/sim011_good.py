"""Known-good: sums stay within one family; ratios may convert."""

from repro.platform.units import GB, GiB, MB, MiB

image_footprint = 16 * 32 * MiB + 16 * 16 * MiB
bandwidth_budget = 800 * MB + 950 * MB


def as_gib(n_gb):
    # Cross-family *ratio* is a legitimate conversion.
    return n_gb * GB / GiB
