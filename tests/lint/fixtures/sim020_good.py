"""Known-good: generators (or unknown callables) for env.process."""


def run_transfer(env, flow):
    def body():
        flow.start()
        yield flow.done_event

    env.process(body())


class Service:
    def _drain(self, queue):
        while queue:
            yield queue.pop()

    def start(self, env, queue):
        env.process(self._drain(queue))


def spawn(env, make_process):
    # Externally supplied factory: statically unknowable, not flagged.
    env.process(make_process())
