"""Known-good: hot-path module with hoisted/amortized allocations."""
# lint: hot-path


def drain_events(queue, handlers, scratch):
    # Buffers hoisted out of the loop and reused across events.
    targets = scratch.targets
    while queue:
        event = queue.pop()
        targets.clear()
        for h in handlers:
            if h.wants(event):
                targets.append(h)
        for handler in targets:
            handler(event)


def rebuild_on_topology_change(flows):
    # Runs only when a flow is admitted/removed, not per event — the
    # pragma records why the allocation is amortized.
    index = {}
    for flow in flows:
        index[flow.fid] = tuple(flow.links)
        flow.scratch = []  # lint: ignore[SIM061] - rebuild is amortized over topology changes


def setup_outside_loops(capacities):
    # Allocations outside any loop are always fine.
    caps = list(capacities.values())
    names = {name: i for i, name in enumerate(capacities)}
    return caps, names


def nested_scope_resets_loop_context(items):
    for item in items:
        # The nested function body runs in its own call context, not
        # once per iteration of this loop.
        def describe():
            return {"item": item}

        item.describe = describe
