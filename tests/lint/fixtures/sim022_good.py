"""Known-good: ordered comparisons and tolerant equality on time."""

import math


def is_deadline(env, deadline):
    return env.now >= deadline


def phase_changed(env, last_change, tol=1e-9):
    return not math.isclose(env.now, last_change, abs_tol=tol)


def count_matches(kind, events):
    # == on non-time values is fine.
    return sum(1 for e in events if e.kind == kind)
