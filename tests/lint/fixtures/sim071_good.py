"""Known-good: select() stays pure; allocator sites own telemetry."""

from repro.obs import WaitCause
from repro.wms.policies import QueuePolicy


class QuietPolicy(QueuePolicy):
    name = "quiet"

    def select(self, queue, free, now, running):
        picks = []
        for index, request in enumerate(queue):
            if request.amount > free:
                break
            picks.append(index)
            free -= request.amount
        return picks


class Allocator:
    """Not a policy: grant/release sites legitimately report waits."""

    def grant(self, obs, request):
        obs.on_task_unblocked(request.tag, WaitCause.CORES)

    def select(self, obs, queue):
        # A select() outside a QueuePolicy subclass is out of scope.
        obs.log_event("alloc", "select", depth=len(queue))
