"""Known-good: solver choice flows through the allocator registry."""

from repro.network import FlowNetwork, resolve_allocator


def build_network(env, name):
    # The registry keeps the discipline nameable (config, sweep, CLI)
    # and lets FlowNetwork engage the incremental fast path.
    return FlowNetwork(env, allocator=name)


def rates_for(name, flow_links, capacities):
    allocator = resolve_allocator(name)
    return allocator(flow_links, capacities)
