"""Known-bad: exact equality on simulated timestamps (SIM022)."""


def is_deadline(env, deadline):
    return env.now == deadline  # expect[SIM022]


def phase_changed(env, last_change):
    stamp = env.now
    if stamp != last_change:  # expect[SIM022]
        return True
    return False
