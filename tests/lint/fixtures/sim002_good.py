"""Known-good: explicitly seeded generators threaded as parameters."""

import random

import numpy as np


def jitter(values, rng: random.Random):
    rng.shuffle(values)
    return values[0] + rng.random()


def noise(n, seed: int):
    rng = np.random.default_rng(seed)
    return rng.random(n)


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)
