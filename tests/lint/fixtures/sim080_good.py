"""Known-good: subsystem diagnostics flow through the event log."""


def transfer(env, flow):
    obs = env.obs
    if obs is not None:
        obs.log_event(
            "network", "flow_completed", label=flow.label, size=flow.size
        )
    return flow


def request(env, service, file):
    obs = env.obs
    if obs is not None:
        obs.log_event(
            "storage", "insufficient_storage",
            service=service.name, file=file.name, need=file.size,
        )
    raise RuntimeError("insufficient storage")


def main():
    # A main() entry point owns its terminal, wherever it lives.
    print("sweep finished")
