"""Known-bad: mutable default arguments (SIM030)."""


def run_batch(jobs, completed=[]):  # expect[SIM030]
    completed.extend(jobs)
    return completed


def configure(overrides={}, tags=set()):  # expect[SIM030] expect[SIM030]
    return overrides, tags


def keyword_only(*, hosts=list()):  # expect[SIM030]
    return hosts
