"""Known-bad: hash-ordered iteration feeding scheduling (SIM003)."""


def schedule_ready(ready_names, start_task):
    for name in set(ready_names):  # expect[SIM003]
        start_task(name)


def pick_hosts(hosts):
    return [h for h in {h.strip() for h in hosts}]  # expect[SIM003]


def next_task(queue):
    return min(queue.values())  # expect[SIM003]


def busiest(load_by_host):
    return max({h for h in load_by_host})  # expect[SIM003]
