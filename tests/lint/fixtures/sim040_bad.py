"""Known-bad: bare print() in library code (SIM040)."""


def allocate(host, cores):
    print(f"allocating {cores} cores on {host}")  # expect[SIM040]
    return cores


class Engine:
    def step(self):
        print("stepping")  # expect[SIM040]


def debug_dump(records):
    for record in records:
        print(record)  # expect[SIM040]


def run():
    # Not called main(), so its prints are still library output.
    print("done")  # expect[SIM040]
