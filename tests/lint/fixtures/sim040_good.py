"""Known-good: output via logging/return values, prints only in main()."""

import logging

logger = logging.getLogger(__name__)


def allocate(host, cores):
    logger.debug("allocating %d cores on %s", cores, host)
    return cores


def render(records):
    return "\n".join(str(r) for r in records)


def main():
    # A main() entry point may print: its output is the interface.
    print(render([]))
    for line in render([]).splitlines():
        print(line)
    return 0
