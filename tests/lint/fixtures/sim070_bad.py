"""Known-bad: wait-cause hooks fed ad-hoc strings (SIM070)."""


def run_task(env, task):
    obs = env.obs
    if obs is not None:
        # A string cause fractures the closed vocabulary: diffs between
        # runs would report "cpu" and "cores" as different resources.
        obs.on_task_blocked(task.name, "cores")  # expect[SIM070]
    yield env.timeout(1.0)
    obs = env.obs
    if obs is not None:
        obs.on_task_unblocked(task.name, "cpu")  # expect[SIM070]


def forgot_the_cause(env, task):
    env.obs.on_task_blocked(task.name)  # expect[SIM070]


def variable_cause(env, task, cause):
    env.obs.on_task_blocked(task.name, cause=cause)  # expect[SIM070]
