"""Known-bad: wall-clock reads in simulation code (SIM001)."""

import time
from datetime import datetime
from time import monotonic as mono


def stamp_event(trace):
    trace.append(time.time())  # expect[SIM001]


def label_run():
    started = datetime.now()  # expect[SIM001]
    tick = mono()  # expect[SIM001]
    return started, tick
