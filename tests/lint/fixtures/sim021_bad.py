"""Known-bad: blocking calls inside process generators (SIM021)."""

import subprocess
import time


def transfer(env, flow):
    flow.start()
    time.sleep(0.1)  # expect[SIM021]
    yield flow.done_event


def monitor(env, path):
    while True:
        handle = open(path)  # expect[SIM021]
        handle.close()
        subprocess.run(["sync"])  # expect[SIM021]
        yield env.timeout(1.0)
