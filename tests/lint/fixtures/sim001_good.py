"""Known-good: simulated time comes from the environment clock."""


def stamp_event(env, trace):
    trace.append(env.now)


def duration(env, start):
    return env.now - start
