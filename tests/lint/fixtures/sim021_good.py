"""Known-good: processes wait by yielding; real I/O stays outside."""


def transfer(env, flow):
    flow.start()
    yield env.timeout(0.1)
    yield flow.done_event


def load_trace(path):
    # Not a generator: ordinary setup code may do real file I/O.
    with open(path) as handle:
        return handle.read()
