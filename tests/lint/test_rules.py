"""Fixture-corpus tests: every rule ID fires at exactly the marked
lines of its known-bad snippet and stays silent on the known-good one.

Expected findings are encoded in the fixtures themselves: a line that
should be flagged carries an ``# expect[SIMxxx]`` marker (repeated when
one line yields several findings).
"""

from __future__ import annotations

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.lint import Checker, all_rules

FIXTURES = Path(__file__).parent / "fixtures"
EXPECT = re.compile(r"expect\[(SIM\d+)\]")


def _expected_findings(path: Path) -> Counter:
    """(rule_id, line) -> count, parsed from expect markers."""
    expected: Counter = Counter()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for rule_id in EXPECT.findall(line):
            expected[(rule_id, lineno)] += 1
    return expected


def _rule_ids_with_fixtures() -> list[str]:
    return sorted(p.stem[:6].upper() for p in FIXTURES.glob("sim*_bad.py"))


@pytest.mark.parametrize("rule_id", _rule_ids_with_fixtures())
def test_bad_fixture_flags_exact_lines(rule_id):
    path = FIXTURES / f"{rule_id.lower()}_bad.py"
    diagnostics = Checker(select=[rule_id]).check_file(path)
    found = Counter((d.rule_id, d.line) for d in diagnostics)
    expected = _expected_findings(path)
    assert expected, f"fixture {path.name} has no expect markers"
    assert found == expected
    assert all(d.rule_id == rule_id for d in diagnostics)
    assert all(d.col >= 1 for d in diagnostics)


@pytest.mark.parametrize("rule_id", _rule_ids_with_fixtures())
def test_good_fixture_is_clean(rule_id):
    path = FIXTURES / f"{rule_id.lower()}_good.py"
    assert path.exists(), f"missing good fixture for {rule_id}"
    assert Checker(select=[rule_id]).check_file(path) == []


def test_every_registered_rule_has_a_fixture():
    # Engine-backed (semantic) rules are exercised by the whole-program
    # corpus under fixtures/semantic/ (see test_semantic_*.py), not by
    # single-file snippets.
    semantic = {rule_id for rule_id, cls in all_rules().items() if cls.semantic}
    with_fixtures = set(_rule_ids_with_fixtures())
    assert set(all_rules()) - semantic <= with_fixtures
    assert (Path(__file__).parent / "fixtures" / "semantic").is_dir()


def test_at_least_eight_rules_registered():
    assert len(all_rules()) >= 8


def test_rule_metadata_complete():
    for rule_id, cls in all_rules().items():
        assert cls.id == rule_id
        assert cls.summary, rule_id
        assert cls.rationale, rule_id
        assert cls.fix_hint, rule_id


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        Checker(select=["SIM404"])


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    diagnostics = Checker().check_file(bad)
    assert [d.rule_id for d in diagnostics] == ["SIM999"]
