"""Unit/dimension dataflow (SIM200-series): inference from units
constants and naming conventions, cross-dimension arithmetic, and
bare-magnitude arguments."""

from __future__ import annotations

from pathlib import Path

from repro.lint.semantic import SemanticAnalyzer
from repro.lint.semantic.dimensions import (
    BYTES,
    BYTES_PER_S,
    DIMENSIONLESS,
    SECONDS,
    dim_from_name,
    magnitude_compatible,
)

FIXTURES = Path(__file__).parent / "fixtures" / "semantic"


def run(*paths, select=("SIM201", "SIM202")):
    analyzer = SemanticAnalyzer(select=list(select))
    return analyzer.analyze_paths([str(p) for p in paths]).diagnostics


def test_bad_fixture_reports_each_mixup():
    diags = run(FIXTURES / "dims_bad.py")
    by_rule = sorted((d.rule_id, d.line) for d in diags)
    rules = [r for r, _ in by_rule]
    assert rules.count("SIM201") == 2  # bytes+seconds add, seconds>bytes compare
    assert rules.count("SIM202") == 2  # two bare magnitudes into dim-typed params
    messages = " ".join(d.message for d in diags)
    assert "bytes" in messages and "seconds" in messages


def test_good_fixture_is_clean():
    assert run(FIXTURES / "dims_good.py") == []


def test_name_inference_conventions():
    assert dim_from_name("size_bytes") == BYTES
    assert dim_from_name("makespan") == SECONDS
    assert dim_from_name("bandwidth") == BYTES_PER_S
    assert dim_from_name("bytes_per_second") == BYTES_PER_S
    assert dim_from_name("count") is None  # unknown, not dimensionless
    # rightmost dimensioned token wins
    assert dim_from_name("stage_in_duration_s") == SECONDS


def test_magnitude_compatibility_is_binding_site_only():
    # `bandwidth = 6.5 * GB` is the repo's idiom for quoting rates: the
    # byte-scale constant supplies the magnitude, the name supplies /s.
    assert magnitude_compatible(BYTES, BYTES_PER_S)
    assert not magnitude_compatible(BYTES, SECONDS)


def test_rate_quoted_via_byte_constant_not_flagged(tmp_path):
    src = (
        "from repro.platform.units import GB\n"
        "def f():\n"
        "    bandwidth = 6.5 * GB\n"
        "    return bandwidth\n"
    )
    target = tmp_path / "rates.py"
    target.write_text(src)
    assert run(target) == []


def test_cross_dimension_arithmetic_flagged_inline(tmp_path):
    src = (
        "from repro.platform.units import MB, MINUTE\n"
        "def f():\n"
        "    return 3 * MB + 2 * MINUTE\n"
    )
    target = tmp_path / "mix.py"
    target.write_text(src)
    diags = run(target)
    assert [d.rule_id for d in diags] == ["SIM201"]


def test_small_literals_not_flagged(tmp_path):
    # thresholds/counts below the magnitude threshold stay silent
    src = (
        "def wait(timeout_s):\n"
        "    return timeout_s\n"
        "def caller():\n"
        "    return wait(30)\n"
    )
    target = tmp_path / "small.py"
    target.write_text(src)
    assert run(target) == []
