"""Byte-identity guarantees: semantic analyzer output must be
identical across repeated runs, worker counts, and output formats."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.sarif import collect_rule_meta, render_sarif
from repro.lint.semantic import SemanticAnalyzer

FIXTURES = Path(__file__).parent / "fixtures" / "semantic"


def rendered_output(jobs: int) -> str:
    result = SemanticAnalyzer(jobs=jobs).analyze_paths([str(FIXTURES)])
    return "\n".join(d.render() for d in result.diagnostics)


def test_repeated_runs_are_byte_identical():
    first = rendered_output(jobs=1)
    assert first  # the corpus is not empty
    for _ in range(3):
        assert rendered_output(jobs=1) == first


@pytest.mark.parametrize("jobs", [2, 4])
def test_worker_count_does_not_change_output(jobs):
    assert rendered_output(jobs=jobs) == rendered_output(jobs=1)


def test_sarif_output_is_byte_identical_across_jobs():
    def sarif(jobs: int) -> str:
        result = SemanticAnalyzer(jobs=jobs).analyze_paths([str(FIXTURES)])
        rule_ids = {d.rule_id for d in result.diagnostics}
        return render_sarif(result.diagnostics, collect_rule_meta(rule_ids))

    baseline = sarif(1)
    assert sarif(1) == baseline
    assert sarif(4) == baseline


def test_sarif_carries_code_flow_for_taint_chain():
    result = SemanticAnalyzer(select=["SIM100"]).analyze_paths(
        [str(FIXTURES / "taintpkg")]
    )
    doc = render_sarif(result.diagnostics, collect_rule_meta(["SIM100"]))
    assert '"codeFlows"' in doc
    assert "collectors.py" in doc  # the source hop is in the thread flow


def test_diagnostics_sorted_by_location():
    result = SemanticAnalyzer().analyze_paths([str(FIXTURES)])
    keys = [(d.path, d.line, d.col, d.rule_id, d.message) for d in result.diagnostics]
    assert keys == sorted(keys)
