"""Determinism-taint corpus: cross-module propagation, sanitizers,
and the SIM101/102/103 syntactic companions."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.semantic import SemanticAnalyzer

FIXTURES = Path(__file__).parent / "fixtures" / "semantic"


def run(*paths, select=None):
    analyzer = SemanticAnalyzer(select=select)
    return analyzer.analyze_paths([str(p) for p in paths]).diagnostics


# ----------------------------------------------------------------------
# SIM100: the seeded cross-module bug, two call-graph hops from the sink
# ----------------------------------------------------------------------

def test_cross_module_taint_reaches_sink():
    diags = run(FIXTURES / "taintpkg", select=["SIM100"])
    assert [d.rule_id for d in diags] == ["SIM100"]
    (diag,) = diags
    assert diag.path.endswith("sink.py")
    assert "event-heap insertion" in diag.message
    assert "unsorted" in diag.message


def test_taint_chain_names_every_hop():
    (diag,) = run(FIXTURES / "taintpkg", select=["SIM100"])
    chain = "\n".join(diag.chain)
    # source -> middle -> sink, with files and lines for each hop
    assert "collectors.py" in chain
    assert "taintpkg.collectors.discovered_tasks" in chain
    assert "taintpkg.middle.ready_queue" in chain
    assert "sink.py" in chain
    assert chain.index("collectors.py") < chain.index("middle.ready_queue")
    # the rendered diagnostic shows the chain too
    assert "| " in diags_render(diag)


def diags_render(diag):
    return diag.render()


def test_sorted_launders_taint():
    # clean.py calls the same tainted producer but sorts before the sink
    diags = run(FIXTURES / "taintpkg", select=["SIM100"])
    assert not any(d.path.endswith("clean.py") for d in diags)


def test_single_module_analysis_has_no_cross_module_noise():
    # analyzing only middle.py (no sink in scope) reports nothing
    assert run(FIXTURES / "taintpkg" / "middle.py", select=["SIM100"]) == []


# ----------------------------------------------------------------------
# SIM101: filesystem enumeration
# ----------------------------------------------------------------------

def test_unsorted_iterdir_flagged():
    diags = run(FIXTURES / "fs_bad.py", select=["SIM101"])
    assert [d.rule_id for d in diags] == ["SIM101"]
    assert "iterdir" in diags[0].message


def test_sorted_and_counting_idioms_clean():
    assert run(FIXTURES / "fs_good.py", select=["SIM101"]) == []


# ----------------------------------------------------------------------
# SIM102 / SIM103
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "rule_id, bad, good, n_bad",
    [
        ("SIM102", "sim102_bad.py", "sim102_good.py", 2),
        ("SIM103", "sim103_bad.py", "sim103_good.py", 2),
    ],
)
def test_syntactic_rules(rule_id, bad, good, n_bad):
    bad_diags = run(FIXTURES / bad, select=[rule_id])
    assert [d.rule_id for d in bad_diags] == [rule_id] * n_bad
    assert run(FIXTURES / good, select=[rule_id]) == []


# ----------------------------------------------------------------------
# Selection / pragma behavior at the engine level
# ----------------------------------------------------------------------

def test_select_excludes_other_semantic_rules():
    diags = run(FIXTURES, select=["SIM102"])
    assert {d.rule_id for d in diags} == {"SIM102"}


def test_line_pragma_suppresses_semantic_finding(tmp_path):
    source = FIXTURES.joinpath("fs_bad.py").read_text()
    patched = source.replace(
        "for path in Path(directory).iterdir():",
        "for path in Path(directory).iterdir():  # repro-lint: ignore[SIM101] - test",
    )
    target = tmp_path / "fs_pragma.py"
    target.write_text(patched)
    assert run(target, select=["SIM101"]) == []
