"""Tests for the workflow execution engine."""

import pytest

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.platform.units import MB
from repro.storage import BBMode, ParallelFileSystem, SharedBurstBuffer
from repro.wms import AllBB, AllPFS, EngineConfig, FractionPlacement, WorkflowEngine
from repro.workflow import File, Task, TaskCategory, Workflow

SPEED = TABLE_I["cori"]["core_speed"]


def build(workflow, n_bb=1, placement=None, config=None, n_compute=1,
          host_assignment=None, bb=True):
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=n_compute, n_bb_nodes=n_bb))
    hosts = [f"cn{i}" for i in range(n_compute)]
    compute = ComputeService(plat, hosts)
    pfs = ParallelFileSystem(plat)
    if bb:
        bbs = {
            h: SharedBurstBuffer(plat, [f"bb{i}" for i in range(n_bb)],
                                 BBMode.PRIVATE, owner_host=h)
            for h in hosts
        }
        bb_for_host = lambda h: bbs[h]
    else:
        bb_for_host = None
    engine = WorkflowEngine(
        plat, workflow, compute, pfs,
        bb_for_host=bb_for_host,
        placement=placement or AllPFS(),
        host_assignment=host_assignment,
        config=config,
    )
    return engine


def simple_chain():
    """a → b through one 100 MB file; one external input."""
    ext = File("ext", 100 * MB)
    mid = File("mid", 100 * MB)
    out = File("out", 100 * MB)
    a = Task("a", flops=SPEED, inputs=(ext,), outputs=(mid,), cores=1)
    b = Task("b", flops=SPEED, inputs=(mid,), outputs=(out,), cores=1)
    return Workflow("chain", [a, b])


def test_engine_executes_chain_in_order():
    engine = build(simple_chain())
    trace = engine.run()
    ra, rb = trace.task_record("a"), trace.task_record("b")
    assert ra.end <= rb.start
    assert trace.makespan == rb.end


def test_engine_timing_decomposition():
    """a: read 100MB from PFS (1s), compute 1s, write 100MB to PFS (1s)."""
    engine = build(simple_chain())
    trace = engine.run()
    record = trace.task_record("a")
    assert record.read_time == pytest.approx(1.0, rel=1e-6)
    assert record.compute_time == pytest.approx(1.0, rel=1e-6)
    assert record.write_time == pytest.approx(1.0, rel=1e-6)
    assert record.io_fraction == pytest.approx(2 / 3, rel=1e-6)


def test_engine_respects_core_limits():
    """Two independent 32-core tasks on one node serialize."""
    tasks = [
        Task(f"t{i}", flops=32 * SPEED, cores=32) for i in range(2)
    ]
    engine = build(Workflow("two", tasks))
    trace = engine.run()
    assert trace.makespan == pytest.approx(2.0, rel=1e-6)


def test_engine_parallel_tasks_on_free_cores():
    tasks = [Task(f"t{i}", flops=SPEED, cores=1) for i in range(32)]
    engine = build(Workflow("par", tasks))
    trace = engine.run()
    assert trace.makespan == pytest.approx(1.0, rel=1e-6)


def test_outputs_to_bb_when_placed():
    engine = build(simple_chain(), placement=AllBB())
    trace = engine.run()
    bb = engine._bb_service("cn0")
    assert bb.contains(File("mid", 100 * MB))
    assert bb.contains(File("out", 100 * MB))


def test_outputs_to_pfs_by_default():
    engine = build(simple_chain())
    engine.run()
    assert engine.pfs.contains(File("mid", 100 * MB))


def test_external_inputs_populated_on_pfs():
    engine = build(simple_chain())
    engine.run()
    assert engine.pfs.contains(File("ext", 100 * MB))


def test_prestage_places_inputs_in_bb_at_no_cost():
    engine = build(
        simple_chain(),
        placement=FractionPlacement(input_fraction=1.0),
    )
    trace = engine.run()
    # Input read from the BB (800 MB/s uplink) instead of the PFS disk.
    record = trace.task_record("a")
    assert record.read_time == pytest.approx(100 * MB / (800 * MB), rel=1e-6)


def test_prestage_disabled():
    engine = build(
        simple_chain(),
        placement=FractionPlacement(input_fraction=1.0),
        config=EngineConfig(prestage_inputs=False),
    )
    trace = engine.run()
    record = trace.task_record("a")
    assert record.read_time == pytest.approx(1.0, rel=1e-6)  # PFS read


def test_stage_in_task_copies_to_bb():
    ext = File("ext", 100 * MB)
    stage = Task(
        "stage_in", flops=0, outputs=(ext,), category=TaskCategory.STAGE_IN
    )
    consumer = Task("c", flops=SPEED, inputs=(ext,), cores=1)
    wf = Workflow("staged", [stage, consumer])
    engine = build(wf, placement=FractionPlacement(input_fraction=1.0))
    trace = engine.run()
    # Stage copy: PFS read at 100 MB/s is the bottleneck → 1 s.
    assert trace.task_record("stage_in").duration == pytest.approx(1.0, rel=1e-4)
    assert engine._bb_service("cn0").contains(ext)


def test_stage_in_external_mode_charges_bb_ingest_only():
    ext = File("ext", 800 * MB)
    stage = Task(
        "stage_in", flops=0, outputs=(ext,), category=TaskCategory.STAGE_IN
    )
    consumer = Task("c", flops=SPEED, inputs=(ext,), cores=1)
    wf = Workflow("staged", [stage, consumer])
    engine = build(
        wf,
        placement=FractionPlacement(input_fraction=1.0),
        config=EngineConfig(stage_in_external=True),
    )
    trace = engine.run()
    # 800 MB over the 800 MB/s BB uplink, no PFS read charge → 1 s.
    assert trace.task_record("stage_in").duration == pytest.approx(1.0, rel=1e-4)


def test_stage_in_skips_files_not_placed():
    ext = File("ext", 100 * MB)
    stage = Task(
        "stage_in", flops=0, outputs=(ext,), category=TaskCategory.STAGE_IN
    )
    consumer = Task("c", flops=SPEED, inputs=(ext,), cores=1)
    wf = Workflow("staged", [stage, consumer])
    engine = build(wf, placement=AllPFS())
    trace = engine.run()
    assert trace.task_record("stage_in").duration == pytest.approx(0.0, abs=1e-9)


def test_private_bb_falls_back_to_pfs_for_cross_host_consumers():
    """A file produced on cn0 but consumed on cn1 cannot live only in
    cn0's private allocation; the engine must route it via the PFS."""
    mid = File("mid", 10 * MB)
    a = Task("a", flops=SPEED, outputs=(mid,), cores=1)
    b = Task("b", flops=SPEED, inputs=(mid,), cores=1)
    wf = Workflow("cross", [a, b])
    assignment = {"a": "cn0", "b": "cn1"}
    engine = build(
        wf,
        placement=AllBB(),
        n_compute=2,
        host_assignment=lambda t: assignment[t.name],
    )
    trace = engine.run()
    assert engine.pfs.contains(mid)
    assert trace.task_record("b").end > 0


def test_engine_without_bb_runs_pure_pfs():
    engine = build(simple_chain(), placement=AllBB(), bb=False)
    trace = engine.run()
    assert engine.pfs.contains(File("mid", 100 * MB))


def test_engine_is_single_use():
    engine = build(simple_chain())
    engine.run()
    with pytest.raises(RuntimeError, match="single-use"):
        engine.run()


def test_eviction_frees_bb_space():
    engine = build(
        simple_chain(),
        placement=AllBB(),
        config=EngineConfig(evict_consumed_intermediates=True),
    )
    engine.run()
    bb = engine._bb_service("cn0")
    assert not bb.contains(File("mid", 100 * MB))  # consumed by b, evicted
    assert bb.contains(File("out", 100 * MB))      # never consumed, kept


def test_trace_events_emitted():
    engine = build(simple_chain())
    trace = engine.run()
    kinds = {e.kind for e in trace.events}
    assert {"task_ready", "task_start", "read_end", "compute_end", "task_end"} <= kinds


def test_empty_workflow_completes_immediately():
    engine = build(Workflow("empty", []))
    trace = engine.run()
    assert trace.makespan == 0.0


def test_diamond_dependencies_respected():
    f1, f2, f3, f4 = (File(f"f{i}", MB) for i in range(4))
    tasks = [
        Task("a", flops=SPEED, outputs=(f1, f2), cores=1),
        Task("b", flops=SPEED, inputs=(f1,), outputs=(f3,), cores=1),
        Task("c", flops=SPEED, inputs=(f2,), outputs=(f4,), cores=1),
        Task("d", flops=SPEED, inputs=(f3, f4), cores=1),
    ]
    engine = build(Workflow("diamond", tasks))
    trace = engine.run()
    ra = trace.task_record("a")
    rd = trace.task_record("d")
    for mid in ("b", "c"):
        r = trace.task_record(mid)
        assert ra.end <= r.start
        assert r.end <= rd.start
