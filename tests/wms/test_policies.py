"""Tests for the queue-policy registry, the policies, and the plan
coordinator's joint co-reservation contract."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import des
from repro.compute import AllocationError, ComputeService, CoreAllocator
from repro.obs import Observer
from repro.platform import Platform
from repro.platform.presets import cori_spec
from repro.scenarios import contended_jobs, run_contended
from repro.storage.provisioning import BBProvisioner
from repro.wms.policies import (
    DEFAULT_POLICY,
    UNKNOWN,
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FifoPolicy,
    PlanCoordinator,
    QueuePolicy,
    QueuedRequest,
    RunningGrant,
    policy_names,
    register_policy,
    resolve_policy,
)

GRANULARITY = 1.6e12  # 4 granules per 6.4 TB Cori BB node


def _queue(*amounts_estimates):
    env = des.Environment()
    return [
        QueuedRequest(amount=a, event=env.event(), tag=f"r{i}", estimate=e)
        for i, (a, e) in enumerate(amounts_estimates)
    ]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_builtin_policies_registered():
    assert policy_names() == [
        "conservative-backfill", "easy-backfill", "fifo", "plan",
    ]
    assert DEFAULT_POLICY == "fifo"


def test_resolve_none_is_default():
    assert isinstance(resolve_policy(None), FifoPolicy)


def test_resolve_passthrough_and_unknown():
    policy = EasyBackfillPolicy()
    assert resolve_policy(policy) is policy
    with pytest.raises(ValueError, match="unknown queue policy"):
        resolve_policy("shortest-job-first")


def test_register_idempotent_rebind_rejected():
    policy = resolve_policy("fifo")
    assert register_policy("fifo", policy) is policy  # same object: ok
    with pytest.raises(ValueError, match="already registered"):
        register_policy("fifo", FifoPolicy())  # different object: no


# ----------------------------------------------------------------------
# select(): per-policy unit behaviour
# ----------------------------------------------------------------------
def test_fifo_stops_at_first_misfit():
    queue = _queue((2, 1.0), (8, 1.0), (1, 1.0))
    assert FifoPolicy().select(queue, 4, 0.0, []) == [0]


def test_easy_backfills_small_job_that_finishes_before_shadow():
    # 4 units total, 3 running until t=10; head wants 4 (shadow = 10).
    queue = _queue((4, 5.0), (1, 2.0))
    running = [RunningGrant(3, deadline=10.0)]
    assert EasyBackfillPolicy().select(queue, 1, 0.0, running) == [1]


def test_easy_respects_head_reservation():
    # The backfill candidate would finish at 20 > shadow 10 and needs
    # more than the extra units (0): it must wait.
    queue = _queue((4, 5.0), (1, 20.0))
    running = [RunningGrant(3, deadline=10.0)]
    assert EasyBackfillPolicy().select(queue, 1, 0.0, running) == []


def test_easy_unknown_estimate_only_extra_units():
    # Shadow 10 with 1 extra unit: the no-estimate job fits the extra.
    queue = _queue((3, 5.0), (1, UNKNOWN))
    running = [RunningGrant(3, deadline=10.0)]
    assert EasyBackfillPolicy().select(queue, 1, 0.0, running) == [1]
    # ...but a no-estimate job exceeding the extra units must wait
    # (head wants 4 of the 5 available at the shadow: 1 extra unit).
    queue = _queue((4, 5.0), (2, UNKNOWN))
    assert EasyBackfillPolicy().select(queue, 2, 0.0, running) == []


def test_conservative_backfills_without_delaying_anyone():
    # Head wants 4 at t=10; the 1-unit/2s job slots in front harmlessly.
    queue = _queue((4, 5.0), (1, 2.0))
    running = [RunningGrant(3, deadline=10.0)]
    assert ConservativeBackfillPolicy().select(queue, 1, 0.0, running) == [1]


def test_conservative_refuses_delaying_backfill():
    # Granting the 10s job would push the head past its t=2 projection.
    queue = _queue((2, 1.0), (1, 10.0))
    running = [RunningGrant(1, deadline=2.0)]
    assert ConservativeBackfillPolicy().select(queue, 1, 0.0, running) == []


def test_policies_grant_whole_queue_when_everything_fits():
    queue = _queue((1, 1.0), (2, UNKNOWN), (1, 3.0))
    for name in policy_names():
        assert resolve_policy(name).select(queue, 8, 0.0, []) == [0, 1, 2]


# ----------------------------------------------------------------------
# select(): properties
# ----------------------------------------------------------------------
request_lists = st.lists(
    st.tuples(st.integers(1, 8), st.floats(0.5, 50.0)), min_size=0, max_size=6
)
running_lists = st.lists(
    st.tuples(st.integers(1, 8), st.floats(0.5, 50.0)), min_size=0, max_size=4
)


@settings(max_examples=200, deadline=None)
@given(requests=request_lists, running=running_lists, free=st.integers(0, 12))
def test_selections_are_sound_and_fifo_compatible(requests, running, free):
    """Every policy returns ascending in-range indices fitting ``free``,
    and every policy grants at least FIFO's prefix (backfilling only
    ever adds grants, never removes the ones FIFO would make now)."""
    queue = _queue(*requests)
    grants = [RunningGrant(a, deadline=d) for a, d in running]
    fifo_picks = FifoPolicy().select(queue, free, 0.0, grants)
    for name in policy_names():
        picks = resolve_policy(name).select(queue, free, 0.0, grants)
        assert picks == sorted(set(picks))
        assert all(0 <= i < len(queue) for i in picks)
        assert sum(queue[i].amount for i in picks) <= free
        assert set(fifo_picks) <= set(picks)


@settings(max_examples=150, deadline=None)
@given(requests=request_lists, running=running_lists, free=st.integers(0, 12))
def test_conservative_never_delays_past_fifo_projection(
    requests, running, free
):
    """With exact estimates, conservative backfilling leaves every
    unselected request's projected start no later than strict FIFO's."""
    queue = _queue(*requests)
    grants = [RunningGrant(a, deadline=d) for a, d in running]
    policy = ConservativeBackfillPolicy()
    fifo_projection = policy._projected_starts(queue, free, 0.0, grants)
    picks = policy.select(queue, free, 0.0, grants)
    rest = [r for i, r in enumerate(queue) if i not in picks]
    rest_baseline = [
        s for i, s in enumerate(fifo_projection) if i not in picks
    ]
    granted_now = grants + [
        RunningGrant(queue[i].amount, queue[i].estimate) for i in picks
    ]
    free_after = free - sum(queue[i].amount for i in picks)
    after = policy._projected_starts(rest, free_after, 0.0, granted_now)
    assert all(a <= b for a, b in zip(after, rest_baseline))


@settings(max_examples=100, deadline=None)
@given(requests=request_lists, running=running_lists, free=st.integers(0, 12))
def test_select_is_deterministic(requests, running, free):
    queue = _queue(*requests)
    grants = [RunningGrant(a, deadline=d) for a, d in running]
    for name in policy_names():
        policy = resolve_policy(name)
        first = policy.select(queue, free, 0.0, grants)
        assert all(
            policy.select(queue, free, 0.0, grants) == first for _ in range(3)
        )


# ----------------------------------------------------------------------
# Allocators honour the configured policy
# ----------------------------------------------------------------------
def test_core_allocator_backfills_with_estimates():
    env = des.Environment()
    alloc = CoreAllocator(env, 4, policy="easy-backfill")
    order = []

    def job(name, cores, duration, arrival):
        yield env.timeout(arrival)
        a = yield alloc.request(cores, task=name, estimate=duration)
        order.append((name, env.now))
        yield env.timeout(duration)
        a.release()

    env.process(job("hold", 3, 10.0, 0.0))
    env.process(job("big", 4, 5.0, 0.1))    # must wait for t=10
    env.process(job("tiny", 1, 2.0, 0.2))   # backfills at t=0.2
    env.run()
    assert order == [("hold", 0.0), ("tiny", 0.2), ("big", 10.0)]


def test_core_allocator_fifo_still_blocks_backfill():
    env = des.Environment()
    alloc = CoreAllocator(env, 4)  # default fifo
    order = []

    def job(name, cores, duration, arrival):
        yield env.timeout(arrival)
        a = yield alloc.request(cores, task=name, estimate=duration)
        order.append((name, env.now))
        yield env.timeout(duration)
        a.release()

    env.process(job("hold", 3, 10.0, 0.0))
    env.process(job("big", 4, 5.0, 0.1))
    env.process(job("tiny", 1, 2.0, 0.2))
    env.run()
    assert order == [("hold", 0.0), ("big", 10.0), ("tiny", 15.0)]


def test_provisioner_backfills_with_estimates():
    env = des.Environment()
    platform = Platform(env, cori_spec(n_compute=1, n_bb_nodes=2))
    prov = BBProvisioner(
        platform, granularity=GRANULARITY, policy="easy-backfill"
    )
    order = []

    def job(name, granules, duration, arrival):
        yield env.timeout(arrival)
        lease = yield prov.request(
            granules * GRANULARITY, job=name, estimate=duration
        )
        order.append((name, env.now))
        yield env.timeout(duration)
        lease.release()

    env.process(job("hold", 6, 10.0, 0.0))
    env.process(job("big", 8, 5.0, 0.1))
    env.process(job("tiny", 2, 2.0, 0.2))
    env.run()
    assert order == [("hold", 0.0), ("tiny", 0.2), ("big", 10.0)]


def test_allocator_over_release_raises_even_under_O():
    env = des.Environment()
    alloc = CoreAllocator(env, 4)
    with pytest.raises(AllocationError, match="double release"):
        alloc._release(1)


# ----------------------------------------------------------------------
# PlanCoordinator: joint co-reservation
# ----------------------------------------------------------------------
@pytest.fixture
def plan_setup():
    env = des.Environment()
    platform = Platform(env, cori_spec(n_compute=2, n_bb_nodes=2))
    compute = ComputeService(platform, ["cn0", "cn1"], queue_policy="fifo")
    prov = BBProvisioner(platform, granularity=GRANULARITY, policy="fifo")
    return env, compute, prov, PlanCoordinator(compute, prov)


def test_plan_grants_both_or_neither(plan_setup):
    env, compute, prov, coord = plan_setup
    log = []

    def job(name, host, cores, granules, duration, arrival):
        yield env.timeout(arrival)
        r = yield coord.request(
            host, cores, granules * GRANULARITY,
            job=name, estimate=duration,
        )
        log.append(
            (name, env.now, r.allocation is not None, r.lease is not None)
        )
        yield env.timeout(duration)
        r.release()

    env.process(job("a", "cn0", 16, 6, 2.0, 0.0))
    env.process(job("b", "cn0", 16, 6, 5.0, 0.5))   # both halves busy
    env.process(job("c", "cn1", 4, 2, 1.0, 0.6))    # free cores + granules
    env.run()
    assert log == [
        ("a", 0.0, True, True),
        ("c", 0.6, True, True),
        ("b", 2.0, True, True),
    ]
    assert compute.allocator("cn0").free_cores == 32
    assert prov.free_granules == prov.total_granules


def test_plan_never_holds_one_resource_while_waiting(plan_setup):
    """While a joint request waits, it must hold *neither* resource —
    the hold-and-wait the coordinator exists to eliminate."""
    env, compute, prov, coord = plan_setup
    snapshots = []

    def hog(env):
        r = yield coord.request("cn0", 32, 8 * GRANULARITY, job="hog",
                                estimate=5.0)
        yield env.timeout(5.0)
        r.release()

    def blocked(env):
        yield env.timeout(1.0)
        event = coord.request("cn0", 4, 2 * GRANULARITY, job="late",
                              estimate=1.0)
        # Request is pending (hog holds everything until t=5): the
        # waiting job must have claimed nothing.
        snapshots.append((compute.allocator("cn0").free_cores,
                          prov.free_granules))
        yield event

    env.process(hog(env))
    env.process(blocked(env))
    env.run()
    assert snapshots == [(0, 0)]


@settings(max_examples=40, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(
            st.integers(0, 1),     # host index
            st.integers(1, 32),    # cores
            st.integers(1, 8),     # granules
            st.floats(0.5, 10.0),  # duration
        ),
        min_size=1,
        max_size=6,
    )
)
def test_plan_atomicity_property(jobs):
    """Whatever the job mix, cores and granules are claimed and
    restored in lockstep: free counts return to full, and every grant
    instant claims both halves."""
    env = des.Environment()
    platform = Platform(env, cori_spec(n_compute=2, n_bb_nodes=2))
    compute = ComputeService(platform, ["cn0", "cn1"], queue_policy="fifo")
    prov = BBProvisioner(platform, granularity=GRANULARITY, policy="fifo")
    coord = PlanCoordinator(compute, prov)
    grants = []

    def job(i, host_i, cores, granules, duration):
        yield env.timeout(0.25 * i)
        r = yield coord.request(
            f"cn{host_i}", cores, granules * GRANULARITY,
            job=f"j{i}", estimate=duration,
        )
        grants.append((r.allocation.cores == cores,
                       r.lease.allocation.granules == granules))
        yield env.timeout(duration)
        r.release()

    for i, (host_i, cores, granules, duration) in enumerate(jobs):
        env.process(job(i, host_i, cores, granules, duration))
    env.run()
    assert len(grants) == len(jobs)
    assert all(c and g for c, g in grants)
    assert compute.allocator("cn0").free_cores == 32
    assert compute.allocator("cn1").free_cores == 32
    assert prov.free_granules == prov.total_granules


# ----------------------------------------------------------------------
# Contended scenario: the policies actually move the needle
# ----------------------------------------------------------------------
def _trace_signature(result):
    return (
        [(e.time, e.kind, e.task, e.detail) for e in result.trace.events],
        sorted(
            (r.name, r.host, r.cores, r.start, r.end)
            for r in result.trace.records.values()
        ),
    )


@pytest.mark.parametrize("policy", ["fifo", "easy-backfill",
                                    "conservative-backfill", "plan"])
def test_contended_run_is_deterministic(policy):
    first = _trace_signature(run_contended(queue_policy=policy))
    second = _trace_signature(run_contended(queue_policy=policy))
    assert first == second


def test_backfill_and_plan_beat_fifo_on_bb_waits():
    """The acceptance experiment: backfill/plan cut the critical-path
    BB-capacity wait versus FIFO while the per-task work is unchanged."""
    from repro.profile import build_profile

    attribution = {}
    durations = {}
    for policy in ("fifo", "easy-backfill", "plan"):
        observer = Observer()
        result = run_contended(queue_policy=policy, observer=observer)
        profile = build_profile(result.trace, observer=observer)
        attribution[policy] = profile.attribution
        durations[policy] = sorted(
            (r.name, r.duration) for r in result.trace.records.values()
        )
    fifo_bb = attribution["fifo"].get("wait:bb_capacity", 0.0)
    easy_bb = attribution["easy-backfill"].get("wait:bb_capacity", 0.0)
    plan_bb = attribution["plan"].get("wait:bb_capacity", 0.0)
    assert fifo_bb > 0
    assert easy_bb < fifo_bb
    assert plan_bb < fifo_bb
    # Same work, different order: per-task durations are identical.
    assert durations["easy-backfill"] == durations["fifo"]
    assert durations["plan"] == durations["fifo"]


@pytest.mark.parametrize("policy", ["fifo", "easy-backfill",
                                    "conservative-backfill", "plan"])
def test_contended_invariant_monitors_stay_clean(policy):
    observer = Observer(monitors=True)
    run_contended(queue_policy=policy, observer=observer)
    counter = observer.registry.counters.get("invariants.violations")
    assert counter is None or counter.value == 0
    # The lease ledger was actually exercised, not silently skipped.
    checks = observer.registry.counter("invariants.lease_balance.checks")
    assert checks.value > 0


def test_contended_jobs_are_stable():
    jobs = contended_jobs(n_jobs=4, n_compute=2)
    assert [j.host for j in jobs] == ["cn0", "cn1", "cn0", "cn1"]
    assert [j.granules for j in jobs] == [6, 4, 2, 2]
    with pytest.raises(ValueError):
        contended_jobs(n_jobs=0)


def test_unknown_policy_rejected_by_scenario():
    with pytest.raises(ValueError, match="unknown queue policy"):
        run_contended(queue_policy="sjf")


# ----------------------------------------------------------------------
# fifo stays the default, byte-identical to the unconfigured path
# ----------------------------------------------------------------------
def _sim_signature(observer, trace):
    return (
        [(e.time, e.kind, e.task, e.detail) for e in trace.events],
        sorted(
            (r.name, r.host, r.cores, r.start, r.end)
            for r in trace.records.values()
        ),
        [(w.task, w.cause.value, w.start, w.end) for w in observer.waits],
        observer.events,
    )


def test_explicit_fifo_matches_default_simulator_run():
    """A config naming "fifo" must reproduce the unconfigured run
    exactly — same trace, same waits, same structured event stream
    (no ``queue_policy`` provenance event pollutes default runs)."""
    from repro.platform.presets import cori_spec as spec
    from repro.simulator import Simulator, SimulatorConfig
    from repro.workflow.swarp import make_swarp

    obs_default = Observer()
    default = Simulator(
        spec(), make_swarp(), observer=obs_default
    ).run()
    obs_fifo = Observer()
    fifo = Simulator(
        spec(), make_swarp(),
        SimulatorConfig(queue_policy="fifo"), observer=obs_fifo,
    ).run()
    assert _sim_signature(obs_default, default) == _sim_signature(
        obs_fifo, fifo
    )
    assert not any(
        e.get("event") == "queue_policy" for e in obs_default.events
    )


def test_non_default_policy_emits_provenance_event():
    from repro.platform.presets import cori_spec as spec
    from repro.simulator import Simulator, SimulatorConfig
    from repro.workflow.swarp import make_swarp

    observer = Observer()
    Simulator(
        spec(), make_swarp(),
        SimulatorConfig(queue_policy="easy-backfill"), observer=observer,
    ).run()
    stamps = [
        e for e in observer.events if e.get("event") == "queue_policy"
    ]
    assert len(stamps) == 1
    assert stamps[0]["fields"]["policy"] == "easy-backfill"


def test_simulator_config_rejects_unknown_policy():
    from repro.simulator import SimulatorConfig

    with pytest.raises(ValueError, match="unknown queue policy"):
        SimulatorConfig(queue_policy="sjf")
