"""Property-based tests on engine invariants over random workflows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.platform.units import MB
from repro.storage import BBMode, ParallelFileSystem, SharedBurstBuffer
from repro.wms import AllBB, AllPFS, WorkflowEngine
from repro.workflow import File, Task, Workflow

SPEED = TABLE_I["cori"]["core_speed"]


@st.composite
def layered_workflows(draw):
    """Random layered DAGs: files flow only from layer i to layer i+1."""
    n_layers = draw(st.integers(min_value=1, max_value=3))
    layers = []
    file_id = [0]

    def new_file(size_mb: float) -> File:
        file_id[0] += 1
        return File(f"f{file_id[0]}", size_mb * MB)

    previous_outputs: list[File] = []
    tasks = []
    for layer in range(n_layers):
        n_tasks = draw(st.integers(min_value=1, max_value=4))
        layer_outputs = []
        for t in range(n_tasks):
            if previous_outputs:
                k = draw(st.integers(min_value=1, max_value=len(previous_outputs)))
                inputs = tuple(previous_outputs[:k])
            else:
                inputs = (new_file(draw(st.floats(min_value=1, max_value=50))),)
            outputs = tuple(
                new_file(draw(st.floats(min_value=1, max_value=50)))
                for _ in range(draw(st.integers(min_value=1, max_value=2)))
            )
            cores = draw(st.integers(min_value=1, max_value=8))
            seconds = draw(st.floats(min_value=0.0, max_value=5.0))
            tasks.append(
                Task(
                    f"t{layer}_{t}",
                    flops=seconds * SPEED,
                    inputs=inputs,
                    outputs=outputs,
                    cores=cores,
                )
            )
            layer_outputs.extend(outputs)
        previous_outputs = layer_outputs
    return Workflow("random", tasks)


def run_workflow(workflow, placement):
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=1, n_bb_nodes=1))
    engine = WorkflowEngine(
        plat,
        workflow,
        ComputeService(plat, ["cn0"]),
        ParallelFileSystem(plat),
        bb_for_host=lambda h: SharedBurstBuffer(
            plat, ["bb0"], BBMode.PRIVATE, owner_host=h
        ),
        placement=placement,
        host_assignment=lambda t: "cn0",
    )
    return engine, engine.run()


@given(layered_workflows())
@settings(max_examples=25, deadline=None)
def test_every_task_executes_exactly_once(workflow):
    engine, trace = run_workflow(workflow, AllPFS())
    assert set(trace.records) == set(workflow.tasks)


@given(layered_workflows())
@settings(max_examples=25, deadline=None)
def test_dependencies_never_violated(workflow):
    engine, trace = run_workflow(workflow, AllPFS())
    for task in workflow:
        record = trace.task_record(task.name)
        for parent in workflow.parents(task.name):
            assert trace.task_record(parent.name).end <= record.start + 1e-9


@given(layered_workflows())
@settings(max_examples=25, deadline=None)
def test_phase_ordering_within_task(workflow):
    engine, trace = run_workflow(workflow, AllBB())
    for record in trace.records.values():
        assert record.start <= record.read_start <= record.read_end
        assert record.read_end <= record.compute_end <= record.write_end
        assert record.write_end <= record.end + 1e-9


@given(layered_workflows())
@settings(max_examples=25, deadline=None)
def test_makespan_bounded_below_by_critical_path(workflow):
    """Makespan can never beat the pure-compute critical path."""
    engine, trace = run_workflow(workflow, AllBB())
    # Each task's compute time on its granted cores (perfect speedup,
    # cores clamped to the host's 32).
    lower_bound = 0.0
    import networkx as nx

    best: dict[str, float] = {}
    for name in nx.topological_sort(workflow.graph):
        task = workflow.task(name)
        cores = min(task.cores, 32)
        compute = task.flops / SPEED / cores
        preds = list(workflow.graph.predecessors(name))
        best[name] = compute + max((best[p] for p in preds), default=0.0)
    lower_bound = max(best.values(), default=0.0)
    assert trace.makespan >= lower_bound - 1e-6


@given(layered_workflows())
@settings(max_examples=15, deadline=None)
def test_all_outputs_stored_somewhere(workflow):
    engine, trace = run_workflow(workflow, AllBB())
    for f in workflow.files.values():
        assert engine.registry.has(f), f"{f.name} vanished"
