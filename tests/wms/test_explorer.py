"""Tests for the placement explorer (policy scoring + greedy search)."""

import pytest

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.platform.units import MB
from repro.storage import BBMode, ParallelFileSystem, SharedBurstBuffer
from repro.wms import (
    AllBB,
    AllPFS,
    ExplicitPlacement,
    GreedyPlacementSearch,
    WorkflowEngine,
    evaluate_policies,
    workflow_candidates,
)
from repro.wms.placement import Tier
from repro.workflow import File, Task, Workflow

SPEED = TABLE_I["cori"]["core_speed"]


def make_workflow():
    """Two pipelines with fat and thin intermediate files."""
    tasks = []
    for i, size in enumerate((400 * MB, 10 * MB)):
        ext = File(f"in{i}", size)
        mid = File(f"mid{i}", size)
        out = File(f"out{i}", MB)
        tasks.append(Task(f"a{i}", flops=SPEED, inputs=(ext,), outputs=(mid,), cores=1))
        tasks.append(Task(f"b{i}", flops=SPEED, inputs=(mid,), outputs=(out,), cores=1))
    return Workflow("two-pipes", tasks)


def make_evaluator(workflow):
    def evaluate(placement) -> float:
        env = des.Environment()
        plat = Platform(env, cori_spec(n_compute=1, n_bb_nodes=1))
        engine = WorkflowEngine(
            plat,
            workflow,
            ComputeService(plat, ["cn0"]),
            ParallelFileSystem(plat),
            bb_for_host=lambda h: SharedBurstBuffer(
                plat, ["bb0"], BBMode.PRIVATE, owner_host=h
            ),
            placement=placement,
            host_assignment=lambda t: "cn0",
        )
        return engine.run().makespan

    return evaluate


# ----------------------------------------------------------------------
# ExplicitPlacement
# ----------------------------------------------------------------------
def test_explicit_placement_defaults_to_pfs():
    wf = make_workflow()
    policy = ExplicitPlacement()
    assert policy.tier_of(wf.files["in0"], wf) == Tier.PFS


def test_explicit_placement_with_file():
    wf = make_workflow()
    policy = ExplicitPlacement().with_file("in0")
    assert policy.tier_of(wf.files["in0"], wf) == Tier.BB
    assert policy.tier_of(wf.files["in1"], wf) == Tier.PFS
    back = policy.without_file("in0")
    assert back.tier_of(wf.files["in0"], wf) == Tier.PFS


def test_explicit_placement_moves_are_copies():
    base = ExplicitPlacement()
    moved = base.with_file("x")
    assert "x" not in base.bb_files
    assert "x" in moved.bb_files


# ----------------------------------------------------------------------
# evaluate_policies
# ----------------------------------------------------------------------
def test_evaluate_policies_sorted_best_first():
    wf = make_workflow()
    scores = evaluate_policies(
        make_evaluator(wf), {"pfs": AllPFS(), "bb": AllBB()}
    )
    assert scores[0].makespan <= scores[1].makespan
    assert scores[0].name == "bb"  # BB wins on this I/O-heavy workflow
    assert scores[0].speedup_vs_worst >= 1.0


def test_evaluate_policies_empty_rejected():
    with pytest.raises(ValueError):
        evaluate_policies(lambda p: 1.0, {})


# ----------------------------------------------------------------------
# GreedyPlacementSearch
# ----------------------------------------------------------------------
def test_greedy_search_improves_makespan():
    wf = make_workflow()
    search = GreedyPlacementSearch(
        make_evaluator(wf), workflow_candidates(wf)
    )
    result = search.run()
    assert result.makespan <= result.baseline_makespan
    assert result.speedup >= 1.0
    assert result.steps  # at least one profitable move on this workflow
    # Moves are recorded consistently.
    for step in result.steps:
        assert step.gain > 0
    assert result.steps[-1].makespan_after == pytest.approx(result.makespan)


def test_greedy_search_prefers_fat_files_first():
    """The 400 MB intermediate buys more than the 10 MB one."""
    wf = make_workflow()
    search = GreedyPlacementSearch(
        make_evaluator(wf), workflow_candidates(wf), max_moves=1
    )
    result = search.run()
    assert len(result.steps) == 1
    assert result.steps[0].file_name in ("in0", "mid0")


def test_greedy_search_respects_eval_budget():
    wf = make_workflow()
    search = GreedyPlacementSearch(
        make_evaluator(wf), workflow_candidates(wf), max_evaluations=3
    )
    result = search.run()
    assert result.evaluations <= 3


def test_greedy_search_stops_when_no_gain():
    """On a compute-bound workflow no placement move helps."""
    ext = File("in", 1)  # 1-byte files: I/O is free
    mid = File("mid", 1)
    tasks = [
        Task("a", flops=10 * SPEED, inputs=(ext,), outputs=(mid,), cores=1),
        Task("b", flops=10 * SPEED, inputs=(mid,), cores=1),
    ]
    wf = Workflow("compute-bound", tasks)
    search = GreedyPlacementSearch(make_evaluator(wf), workflow_candidates(wf))
    result = search.run()
    assert result.steps == []
    assert result.makespan == result.baseline_makespan


def test_greedy_search_validation():
    with pytest.raises(ValueError):
        GreedyPlacementSearch(lambda p: 1.0, [])
    with pytest.raises(ValueError):
        GreedyPlacementSearch(lambda p: 1.0, [File("f", 1)], max_evaluations=0)


def test_workflow_candidates_excludes_final_outputs():
    wf = make_workflow()
    names = {f.name for f in workflow_candidates(wf)}
    assert names == {"in0", "in1", "mid0", "mid1"}


# ----------------------------------------------------------------------
# AnnealingPlacementSearch
# ----------------------------------------------------------------------
def test_annealing_improves_on_io_heavy_workflow():
    from repro.wms import AnnealingPlacementSearch

    wf = make_workflow()
    search = AnnealingPlacementSearch(
        make_evaluator(wf), workflow_candidates(wf), seed=3, iterations=60
    )
    result = search.run()
    assert result.makespan <= result.baseline_makespan
    assert result.speedup >= 1.0


def test_annealing_deterministic_under_seed():
    from repro.wms import AnnealingPlacementSearch

    wf = make_workflow()
    a = AnnealingPlacementSearch(
        make_evaluator(wf), workflow_candidates(wf), seed=5, iterations=30
    ).run()
    b = AnnealingPlacementSearch(
        make_evaluator(wf), workflow_candidates(wf), seed=5, iterations=30
    ).run()
    assert a.makespan == b.makespan
    assert a.placement.bb_files == b.placement.bb_files


def test_annealing_best_never_worse_than_visited():
    from repro.wms import AnnealingPlacementSearch

    wf = make_workflow()
    result = AnnealingPlacementSearch(
        make_evaluator(wf), workflow_candidates(wf), seed=9, iterations=40
    ).run()
    visited = [s.makespan_after for s in result.steps] + [result.baseline_makespan]
    assert result.makespan == pytest.approx(min(visited))


def test_annealing_validation():
    from repro.wms import AnnealingPlacementSearch

    with pytest.raises(ValueError):
        AnnealingPlacementSearch(lambda p: 1.0, [], seed=1)
    with pytest.raises(ValueError):
        AnnealingPlacementSearch(lambda p: 1.0, [File("f", 1)], seed=1, iterations=0)
    with pytest.raises(ValueError):
        AnnealingPlacementSearch(lambda p: 1.0, [File("f", 1)], seed=1, cooling=1.5)
