"""Tests for the scheduling policies."""

import pytest

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I, local_bb_host, summit_spec, cori_spec
from repro.platform.units import MB
from repro.storage import OnNodeBurstBuffer, ParallelFileSystem
from repro.wms import (
    AllBB,
    AllPFS,
    DataLocalityScheduler,
    LeastLoadedScheduler,
    RoundRobinScheduler,
    WorkflowEngine,
    consistent_hash_assignment,
)
from repro.workflow import File, Task, Workflow
from repro.workflow.synthetic import make_fork_join

SPEED = TABLE_I["cori"]["core_speed"]


def build_engine(workflow, scheduler, n_compute=2, placement=None, summit=False):
    env = des.Environment()
    if summit:
        plat = Platform(env, summit_spec(n_compute=n_compute))
        bbs = {
            f"cn{i}": OnNodeBurstBuffer(plat, local_bb_host(f"cn{i}"))
            for i in range(n_compute)
        }
        bb_for_host = lambda h: bbs[h]
    else:
        plat = Platform(env, cori_spec(n_compute=n_compute))
        bb_for_host = None
    hosts = [f"cn{i}" for i in range(n_compute)]
    return WorkflowEngine(
        plat,
        workflow,
        ComputeService(plat, hosts),
        ParallelFileSystem(plat),
        bb_for_host=bb_for_host,
        placement=placement or AllPFS(),
        host_assignment=scheduler,
    )


def test_round_robin_spreads_tasks():
    wf = Workflow(
        "bag", [Task(f"t{i}", flops=SPEED, cores=1) for i in range(8)]
    )
    engine = build_engine(wf, RoundRobinScheduler(), n_compute=2)
    trace = engine.run()
    hosts = {r.host for r in trace.records.values()}
    assert hosts == {"cn0", "cn1"}
    counts = [sum(1 for r in trace.records.values() if r.host == h) for h in hosts]
    assert counts == [4, 4]


def test_least_loaded_balances_unequal_tasks():
    """A 24-core task and several 8-core tasks: least-loaded packs the
    small ones onto the freer host instead of blindly alternating."""
    tasks = [Task("big", flops=10 * SPEED, cores=24)]
    tasks += [Task(f"small{i}", flops=10 * SPEED, cores=8) for i in range(4)]
    wf = Workflow("mixed", tasks)
    engine = build_engine(wf, LeastLoadedScheduler(), n_compute=2)
    trace = engine.run()
    # All five tasks fit concurrently: 24+8 on one host, 3×8 on the other.
    starts = {r.start for r in trace.records.values()}
    assert starts == {0.0}


def test_least_loaded_beats_round_robin_on_makespan():
    """With 3 equal tasks and 2 hosts, both run 2 waves; with 4 hosts
    least-loaded uses all of them."""
    tasks = [Task(f"t{i}", flops=32 * SPEED, cores=32) for i in range(4)]
    wf = Workflow("bag", tasks)
    rr = build_engine(wf, RoundRobinScheduler(), n_compute=4).run()
    ll = build_engine(wf, LeastLoadedScheduler(), n_compute=4).run()
    assert ll.makespan <= rr.makespan
    assert ll.makespan == pytest.approx(1.0, rel=1e-6)


def test_data_locality_follows_producer():
    """The consumer lands on the host whose local BB holds its input."""
    mid = File("mid", 200 * MB)
    producer = Task("produce", flops=SPEED, outputs=(mid,), cores=1)
    consumer = Task("consume", flops=SPEED, inputs=(mid,), cores=1)
    wf = Workflow("pair", [producer, consumer])

    scheduler = DataLocalityScheduler()
    engine = build_engine(
        wf, scheduler, n_compute=2, placement=AllBB(), summit=True
    )
    trace = engine.run()
    assert trace.task_record("consume").host == trace.task_record("produce").host


def test_data_locality_falls_back_to_load():
    """Without any BB copies the locality scheduler degrades to
    least-loaded behaviour (it must not crash on a BB-less engine)."""
    wf = make_fork_join(4)
    engine = build_engine(wf, DataLocalityScheduler(), n_compute=2)
    trace = engine.run()
    assert len(trace.records) == 6


def test_scheduler_requires_attachment():
    scheduler = LeastLoadedScheduler()
    with pytest.raises(AssertionError):
        scheduler(Task("t", flops=1))


def test_assignment_memoized_per_task():
    """A stateful scheduler must be asked once per task even though the
    engine consults assignments repeatedly for placement decisions."""
    calls = []

    class Spy(RoundRobinScheduler):
        def __call__(self, task):
            calls.append(task.name)
            return super().__call__(task)

    wf = make_fork_join(3)
    engine = build_engine(wf, Spy(), n_compute=2, placement=AllPFS())
    engine.run()
    assert sorted(calls) == sorted(set(calls))


def test_consistent_hash_assignment_stable():
    assign = consistent_hash_assignment(["cn0", "cn1", "cn2"])
    t = Task("some_task", flops=1)
    assert assign(t) == assign(t)
    with pytest.raises(ValueError):
        consistent_hash_assignment([])


def test_consistent_hash_runs_workflow():
    wf = make_fork_join(6)
    engine = build_engine(
        wf, consistent_hash_assignment(["cn0", "cn1"]), n_compute=2
    )
    trace = engine.run()
    assert len(trace.records) == 8
