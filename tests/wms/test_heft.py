"""Tests for the HEFT static scheduler."""

import pytest

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.platform.topologies import build_fat_tree
from repro.platform.units import GB, MB
from repro.storage import ParallelFileSystem
from repro.wms import RoundRobinScheduler, WorkflowEngine, heft_assignment
from repro.workflow import File, Task, Workflow
from repro.workflow.synthetic import make_fork_join, make_random_dag

SPEED = TABLE_I["cori"]["core_speed"]


@pytest.fixture
def platform():
    env = des.Environment()
    return Platform(env, cori_spec(n_compute=4))


HOSTS = [f"cn{i}" for i in range(4)]


def test_every_task_placed(platform):
    wf = make_fork_join(6)
    assign = heft_assignment(wf, platform, HOSTS)
    for task in wf:
        assert assign(task) in HOSTS


def test_independent_tasks_spread_over_hosts(platform):
    """Equal independent tasks must not pile onto one host."""
    wf = Workflow(
        "bag", [Task(f"t{i}", flops=32 * SPEED, cores=32) for i in range(4)]
    )
    assign = heft_assignment(wf, platform, HOSTS)
    assert len({assign(t) for t in wf}) == 4


def test_serial_chain_stays_on_one_host(platform):
    """With heavy intermediate files, moving hosts costs transfers; the
    EFT choice keeps a chain co-located."""
    previous = File("c0", 2 * GB)
    tasks = [Task("t0", flops=SPEED, outputs=(previous,), cores=1)]
    for i in range(1, 4):
        out = File(f"c{i}", 2 * GB)
        tasks.append(
            Task(f"t{i}", flops=SPEED, inputs=(previous,), outputs=(out,), cores=1)
        )
        previous = out
    wf = Workflow("chain", tasks)
    assign = heft_assignment(wf, platform, HOSTS)
    assert len({assign(t) for t in wf}) == 1


def test_core_requirements_respected_in_plan(platform):
    """Two 32-core tasks can't share one 32-core host concurrently, so
    HEFT places them apart."""
    wf = Workflow(
        "pair", [Task(f"t{i}", flops=32 * SPEED, cores=32) for i in range(2)]
    )
    assign = heft_assignment(wf, platform, HOSTS)
    assert assign(wf.task("t0")) != assign(wf.task("t1"))


def test_heft_runs_through_engine(platform):
    wf = make_random_dag(15, seed=3)
    assign = heft_assignment(wf, platform, HOSTS)
    engine = WorkflowEngine(
        platform,
        wf,
        ComputeService(platform, HOSTS),
        ParallelFileSystem(platform),
        host_assignment=assign,
    )
    trace = engine.run()
    assert len(trace.records) == 15
    for record in trace.records.values():
        assert record.host == assign.placement[record.name]


def test_heft_no_worse_than_round_robin_on_bags():
    """On a bag of unequal tasks HEFT's EFT placement beats blind RR."""
    def makespan(schedule_factory):
        env = des.Environment()
        plat = Platform(env, cori_spec(n_compute=2))
        wf = Workflow(
            "bag",
            [
                Task(f"big{i}", flops=32 * SPEED, cores=32)
                for i in range(2)
            ]
            + [
                Task(f"small{i}", flops=8 * SPEED, cores=8)
                for i in range(2)
            ],
        )
        hosts = ["cn0", "cn1"]
        engine = WorkflowEngine(
            plat,
            wf,
            ComputeService(plat, hosts),
            ParallelFileSystem(plat),
            host_assignment=schedule_factory(wf, plat, hosts),
        )
        return engine.run().makespan

    heft = makespan(lambda wf, plat, hosts: heft_assignment(wf, plat, hosts))
    rr = makespan(lambda wf, plat, hosts: RoundRobinScheduler())
    assert heft <= rr + 1e-9


def test_heft_with_custom_comm_bytes(platform):
    wf = make_fork_join(3)
    assign = heft_assignment(
        wf, platform, HOSTS, comm_bytes=lambda parent, child: 0.0
    )
    assert set(assign.placement) == set(wf.tasks)


def test_heft_validation(platform):
    with pytest.raises(ValueError):
        heft_assignment(make_fork_join(2), platform, [])


def test_heft_on_fat_tree():
    """Cross-pod transfer costs enter the plan on a real fabric."""
    env = des.Environment()
    spec = build_fat_tree(pods=2, nodes_per_pod=2)
    plat = Platform(env, spec)
    hosts = [h.name for h in spec.hosts_matching("cn")]
    wf = make_random_dag(12, seed=8)
    assign = heft_assignment(wf, plat, hosts)
    engine = WorkflowEngine(
        plat,
        wf,
        ComputeService(plat, hosts),
        ParallelFileSystem(plat),
        host_assignment=assign,
    )
    assert len(engine.run().records) == 12


# ----------------------------------------------------------------------
# Property: HEFT always yields a complete, valid, dependency-safe plan
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workflow.synthetic import make_random_dag as _make_random_dag


@given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=30))
@settings(max_examples=20, deadline=None)
def test_heft_places_every_task_on_random_dags(n, seed):
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=3))
    hosts = ["cn0", "cn1", "cn2"]
    wf = _make_random_dag(n, seed=seed)
    assign = heft_assignment(wf, plat, hosts)
    assert set(assign.placement) == set(wf.tasks)
    assert set(assign.placement.values()) <= set(hosts)


@given(st.integers(min_value=2, max_value=15), st.integers(min_value=0, max_value=20))
@settings(max_examples=10, deadline=None)
def test_heft_plans_execute_correctly(n, seed):
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=3))
    hosts = ["cn0", "cn1", "cn2"]
    wf = _make_random_dag(n, seed=seed)
    engine = WorkflowEngine(
        plat,
        wf,
        ComputeService(plat, hosts),
        ParallelFileSystem(plat),
        host_assignment=heft_assignment(wf, plat, hosts),
    )
    trace = engine.run()
    for task in wf:
        record = trace.task_record(task.name)
        for parent in wf.parents(task.name):
            assert trace.task_record(parent.name).end <= record.start + 1e-9
