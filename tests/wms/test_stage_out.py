"""Tests for stage-out tasks (BB→PFS drains)."""

import pytest

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.platform.units import MB
from repro.storage import BBMode, ParallelFileSystem, SharedBurstBuffer
from repro.wms import AllBB, AllPFS, WorkflowEngine
from repro.workflow import File, Task, TaskCategory, Workflow
from repro.workflow.swarp import make_swarp

SPEED = TABLE_I["cori"]["core_speed"]


def run(workflow, placement):
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=1, n_bb_nodes=1))
    engine = WorkflowEngine(
        plat,
        workflow,
        ComputeService(plat, ["cn0"]),
        ParallelFileSystem(plat),
        bb_for_host=lambda h: SharedBurstBuffer(
            plat, ["bb0"], BBMode.PRIVATE, owner_host=h
        ),
        placement=placement,
        host_assignment=lambda t: "cn0",
    )
    return engine, engine.run()


def workflow_with_stage_out():
    result = File("result", 100 * MB)
    producer = Task("produce", flops=SPEED, outputs=(result,), cores=1)
    drain = Task(
        "stage_out",
        flops=0,
        inputs=(result,),
        category=TaskCategory.STAGE_OUT,
    )
    return Workflow("drained", [producer, drain])


def test_stage_out_drains_bb_file_to_pfs():
    engine, trace = run(workflow_with_stage_out(), AllBB())
    f = File("result", 100 * MB)
    assert engine.pfs.contains(f)
    # BB read channel at 950 MB/s; PFS write at 100 MB/s → ~1 s copy.
    record = trace.task_record("stage_out")
    assert record.duration == pytest.approx(1.0, rel=1e-3)


def test_stage_out_noop_when_already_on_pfs():
    engine, trace = run(workflow_with_stage_out(), AllPFS())
    assert trace.task_record("stage_out").duration == pytest.approx(0.0, abs=1e-9)


def test_stage_out_runs_after_producer():
    engine, trace = run(workflow_with_stage_out(), AllBB())
    assert (
        trace.task_record("produce").end
        <= trace.task_record("stage_out").start
    )


def test_stage_out_registers_pfs_copy():
    engine, trace = run(workflow_with_stage_out(), AllBB())
    f = File("result", 100 * MB)
    locations = {s.name for s in engine.registry.locations(f)}
    assert "pfs" in locations


def test_swarp_with_stage_out_structure():
    wf = make_swarp(n_pipelines=2, include_stage_out=True)
    assert len(wf) == 1 + 4 + 1
    stage_out = wf.task("stage_out")
    assert stage_out.category == TaskCategory.STAGE_OUT
    # It consumes every pipeline's coadd products.
    names = {f.name for f in stage_out.inputs}
    assert names == {
        "p0/coadd.fits", "p0/coadd_w.fits", "p1/coadd.fits", "p1/coadd_w.fits"
    }
    # And depends on every combine.
    assert {t.name for t in wf.parents("stage_out")} == {"combine_0", "combine_1"}


def test_swarp_stage_out_executes_end_to_end():
    engine, trace = run(make_swarp(n_pipelines=1, include_stage_out=True), AllBB())
    assert "stage_out" in trace.records
    assert trace.makespan == trace.task_record("stage_out").end


def test_stage_out_events_logged():
    engine, trace = run(workflow_with_stage_out(), AllBB())
    kinds = {e.kind for e in trace.events}
    assert "stage_out_start" in kinds and "stage_out_end" in kinds
