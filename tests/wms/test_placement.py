"""Tests for placement policies."""

import pytest

from repro.platform.units import MiB
from repro.wms.placement import (
    AllBB,
    AllPFS,
    FileRole,
    FractionPlacement,
    LocalityPlacement,
    SizeThresholdPlacement,
    Tier,
    classify,
)
from repro.workflow import File, Task, Workflow
from repro.workflow.swarp import make_swarp


@pytest.fixture
def swarp():
    return make_swarp(n_pipelines=1)


def test_classify_roles(swarp):
    input_file = swarp.files["p0/input_0.fits"]
    mid_file = swarp.files["p0/resamp_0.fits"]
    out_file = swarp.files["p0/coadd.fits"]
    assert classify(input_file, swarp) == FileRole.INPUT
    assert classify(mid_file, swarp) == FileRole.INTERMEDIATE
    assert classify(out_file, swarp) == FileRole.OUTPUT


def test_classify_stage_in_outputs_are_inputs(swarp):
    """Files 'produced' by stage-in are workflow inputs, not intermediates."""
    f = swarp.files["p0/weight_3.fits"]
    assert swarp.producer_of(f.name).name == "stage_in"
    assert classify(f, swarp) == FileRole.INPUT


def test_fraction_zero_places_nothing(swarp):
    policy = FractionPlacement(0.0, 0.0, 0.0).bind(swarp)
    assert all(
        policy.tier_of(f, swarp) == Tier.PFS for f in swarp.files.values()
    )
    assert policy.staged_input_names(swarp) == []


def test_fraction_one_places_everything(swarp):
    policy = AllBB().bind(swarp)
    assert all(
        policy.tier_of(f, swarp) == Tier.BB for f in swarp.files.values()
    )


def test_fraction_half_inputs(swarp):
    policy = FractionPlacement(input_fraction=0.5).bind(swarp)
    staged = policy.staged_input_names(swarp)
    assert len(staged) == 16  # half of the 32 input files
    # Deterministic: first half by sorted name.
    names = sorted(f.name for f in swarp.external_input_files())
    assert staged == sorted(names[:16])


def test_fraction_selection_is_monotone(swarp):
    """Raising the fraction never removes previously selected files."""
    previous: set = set()
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        staged = set(
            FractionPlacement(input_fraction=frac).bind(swarp).staged_input_names(swarp)
        )
        assert previous <= staged
        previous = staged


def test_fraction_scopes_are_independent(swarp):
    policy = FractionPlacement(
        input_fraction=0.0, intermediate_fraction=1.0
    ).bind(swarp)
    assert policy.tier_of(swarp.files["p0/input_0.fits"], swarp) == Tier.PFS
    assert policy.tier_of(swarp.files["p0/resamp_0.fits"], swarp) == Tier.BB


def test_fraction_validation():
    with pytest.raises(ValueError):
        FractionPlacement(input_fraction=1.5)
    with pytest.raises(ValueError):
        FractionPlacement(output_fraction=-0.1)


def test_fraction_ceil_rounding():
    """ceil semantics: any positive fraction selects at least one file."""
    f_in = File("a", 1)
    t = Task("t", flops=1, inputs=(f_in,))
    wf = Workflow("w", [t])
    policy = FractionPlacement(input_fraction=0.01).bind(wf)
    assert policy.staged_input_names(wf) == ["a"]


def test_all_pfs_convenience(swarp):
    policy = AllPFS().bind(swarp)
    assert policy.staged_input_names(swarp) == []


def test_size_threshold_large_to_bb(swarp):
    policy = SizeThresholdPlacement(threshold=20 * MiB, large_to_bb=True)
    img = swarp.files["p0/input_0.fits"]      # 32 MiB
    weight = swarp.files["p0/weight_0.fits"]  # 16 MiB
    assert policy.tier_of(img, swarp) == Tier.BB
    assert policy.tier_of(weight, swarp) == Tier.PFS


def test_size_threshold_small_to_bb(swarp):
    policy = SizeThresholdPlacement(threshold=20 * MiB, large_to_bb=False)
    img = swarp.files["p0/input_0.fits"]
    weight = swarp.files["p0/weight_0.fits"]
    assert policy.tier_of(img, swarp) == Tier.PFS
    assert policy.tier_of(weight, swarp) == Tier.BB


def test_size_threshold_validation():
    with pytest.raises(ValueError):
        SizeThresholdPlacement(threshold=-1)


def test_locality_placement(swarp):
    policy = LocalityPlacement()
    assert policy.tier_of(swarp.files["p0/resamp_0.fits"], swarp) == Tier.BB
    assert policy.tier_of(swarp.files["p0/input_0.fits"], swarp) == Tier.PFS
    assert policy.tier_of(swarp.files["p0/coadd.fits"], swarp) == Tier.PFS


def test_locality_placement_with_inputs(swarp):
    policy = LocalityPlacement(inputs_to_bb=True)
    assert policy.tier_of(swarp.files["p0/input_0.fits"], swarp) == Tier.BB
