"""Tests for calibration fitting and accuracy metrics."""

import numpy as np
import pytest

from repro.model import (
    FitResult,
    fit_amdahl_alpha,
    fit_lambda_io,
    mean_relative_error,
    observed_time,
    per_point_relative_error,
    trend_agreement,
)


# ----------------------------------------------------------------------
# fit_amdahl_alpha
# ----------------------------------------------------------------------
def test_fit_recovers_synthetic_parameters():
    tc1, alpha, lam = 300.0, 0.15, 0.2
    cores = [1, 2, 4, 8, 16, 32]
    times = [observed_time(tc1, p, lam, alpha) for p in cores]
    fit = fit_amdahl_alpha(cores, times, lam)
    assert fit.tc1 == pytest.approx(tc1, rel=1e-4)
    assert fit.alpha == pytest.approx(alpha, abs=1e-4)
    assert fit.residual < 1e-8


def test_fit_perfect_speedup_yields_zero_alpha():
    cores = [1, 2, 4, 8]
    times = [observed_time(100.0, p, 0.0, 0.0) for p in cores]
    fit = fit_amdahl_alpha(cores, times, 0.0)
    assert fit.alpha == pytest.approx(0.0, abs=1e-3)


def test_fit_predict_matches_data():
    tc1, alpha, lam = 50.0, 0.4, 0.3
    cores = [1, 4, 16]
    times = [observed_time(tc1, p, lam, alpha) for p in cores]
    fit = fit_amdahl_alpha(cores, times, lam)
    for p, t in zip(cores, times):
        assert fit.predict(p) == pytest.approx(t, rel=1e-4)


def test_fit_with_noise_is_close():
    rng = np.random.default_rng(42)
    tc1, alpha, lam = 200.0, 0.1, 0.25
    cores = [1, 2, 4, 8, 16, 32]
    times = [
        observed_time(tc1, p, lam, alpha) * (1 + rng.normal(0, 0.02))
        for p in cores
    ]
    fit = fit_amdahl_alpha(cores, times, lam)
    assert fit.tc1 == pytest.approx(tc1, rel=0.1)
    assert fit.alpha == pytest.approx(alpha, abs=0.05)


def test_fit_validation():
    with pytest.raises(ValueError):
        fit_amdahl_alpha([1], [10.0], 0.1)  # too few points
    with pytest.raises(ValueError):
        fit_amdahl_alpha([4, 4], [10.0, 10.0], 0.1)  # no distinct p
    with pytest.raises(ValueError):
        fit_amdahl_alpha([1, -2], [10.0, 5.0], 0.1)
    with pytest.raises(ValueError):
        fit_amdahl_alpha([1, 2], [10.0, 5.0], 1.5)


# ----------------------------------------------------------------------
# fit_lambda_io
# ----------------------------------------------------------------------
def test_fit_lambda_io_mean():
    total = [10.0, 10.0, 20.0]
    compute = [8.0, 7.0, 16.0]
    # fractions: 0.2, 0.3, 0.2 → mean ≈ 0.2333
    assert fit_lambda_io(total, compute) == pytest.approx(0.7 / 3)


def test_fit_lambda_io_validation():
    with pytest.raises(ValueError):
        fit_lambda_io([], [])
    with pytest.raises(ValueError):
        fit_lambda_io([10.0], [11.0])
    with pytest.raises(ValueError):
        fit_lambda_io([0.0], [0.0])


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_per_point_relative_error():
    errs = per_point_relative_error([10, 20], [11, 18])
    assert errs == pytest.approx([0.1, 0.1])


def test_mean_relative_error():
    assert mean_relative_error([10, 20], [11, 18]) == pytest.approx(0.1)


def test_mean_relative_error_perfect():
    assert mean_relative_error([3, 4, 5], [3, 4, 5]) == 0.0


def test_metrics_validation():
    with pytest.raises(ValueError):
        mean_relative_error([], [])
    with pytest.raises(ValueError):
        mean_relative_error([0.0], [1.0])
    with pytest.raises(ValueError):
        mean_relative_error([1.0, 2.0], [1.0])


def test_trend_agreement_identical_curves():
    assert trend_agreement([1, 2, 3, 2], [10, 20, 30, 20]) == 1.0


def test_trend_agreement_opposite_curves():
    assert trend_agreement([1, 2, 3], [3, 2, 1]) == 0.0


def test_trend_agreement_flat_matches_anything():
    assert trend_agreement([1.0, 1.0005, 1.0], [5, 9, 2]) == 1.0


def test_trend_agreement_needs_two_points():
    with pytest.raises(ValueError):
        trend_agreement([1], [1])
