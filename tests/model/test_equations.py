"""Tests for the paper's equations (1)-(4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import (
    amdahl_speedup,
    amdahl_time,
    io_fraction_from_times,
    observed_time,
    sequential_compute_time,
)


# ----------------------------------------------------------------------
# Eq. (2): Amdahl's law
# ----------------------------------------------------------------------
def test_amdahl_single_core_is_identity():
    assert amdahl_time(100.0, 1, alpha=0.3) == pytest.approx(100.0)


def test_amdahl_perfect_speedup():
    assert amdahl_time(100.0, 4, alpha=0.0) == pytest.approx(25.0)


def test_amdahl_fully_serial():
    assert amdahl_time(100.0, 32, alpha=1.0) == pytest.approx(100.0)


def test_amdahl_mixed():
    # alpha=0.5, p=2 → 0.5·T + 0.5·T/2 = 0.75·T
    assert amdahl_time(100.0, 2, alpha=0.5) == pytest.approx(75.0)


def test_amdahl_speedup_limit():
    # Speedup is bounded by 1/alpha.
    assert amdahl_speedup(10**6, alpha=0.1) == pytest.approx(10.0, rel=1e-4)


def test_amdahl_validation():
    with pytest.raises(ValueError):
        amdahl_time(1.0, 0)
    with pytest.raises(ValueError):
        amdahl_time(1.0, 4, alpha=2.0)
    with pytest.raises(ValueError):
        amdahl_time(-1.0, 4)


# ----------------------------------------------------------------------
# Eqs. (3)/(4): recovering T_c(1)
# ----------------------------------------------------------------------
def test_eq4_paper_form():
    """T_c(1) = p (1 − λ) T(p) with alpha = 0."""
    assert sequential_compute_time(12.0, 32, 0.203) == pytest.approx(
        32 * (1 - 0.203) * 12.0
    )


def test_eq3_reduces_to_eq4_at_alpha_zero():
    a = sequential_compute_time(10.0, 8, 0.25, alpha=0.0)
    b = 8 * (1 - 0.25) * 10.0
    assert a == pytest.approx(b)


def test_eq3_general_form():
    # alpha=1: all serial → T_c(1) = (1-λ)T(p) regardless of p.
    assert sequential_compute_time(10.0, 8, 0.25, alpha=1.0) == pytest.approx(7.5)


def test_sequential_compute_time_validation():
    with pytest.raises(ValueError):
        sequential_compute_time(1.0, 4, 1.0)  # λ must be < 1
    with pytest.raises(ValueError):
        sequential_compute_time(-1.0, 4, 0.5)


@given(
    st.floats(min_value=0.1, max_value=1e4),
    st.integers(min_value=1, max_value=128),
    st.floats(min_value=0.0, max_value=0.9),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_forward_inverse_roundtrip(tc1, p, lam, alpha):
    """observed_time and sequential_compute_time are exact inverses."""
    observed = observed_time(tc1, p, lam, alpha)
    recovered = sequential_compute_time(observed, p, lam, alpha)
    assert recovered == pytest.approx(tc1, rel=1e-9)


@given(
    st.floats(min_value=0.1, max_value=1e4),
    st.integers(min_value=2, max_value=128),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_amdahl_time_monotone_in_alpha(tc1, p, alpha):
    """More serial fraction can only slow a parallel execution down."""
    assert amdahl_time(tc1, p, alpha) >= amdahl_time(tc1, p, 0.0) - 1e-12


@given(
    st.floats(min_value=0.1, max_value=1e4),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_amdahl_time_decreasing_in_cores(tc1, alpha):
    times = [amdahl_time(tc1, p, alpha) for p in (1, 2, 4, 8, 16)]
    assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))


# ----------------------------------------------------------------------
# Eq. (1): λ_io
# ----------------------------------------------------------------------
def test_io_fraction_basic():
    assert io_fraction_from_times(10.0, 8.0) == pytest.approx(0.2)


def test_io_fraction_bounds():
    assert io_fraction_from_times(10.0, 10.0) == 0.0
    assert io_fraction_from_times(10.0, 0.0) == 1.0
    with pytest.raises(ValueError):
        io_fraction_from_times(0.0, 0.0)
    with pytest.raises(ValueError):
        io_fraction_from_times(10.0, 11.0)
