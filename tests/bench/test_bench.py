"""Tests for the repro.bench harness (workloads, agreement, gating)."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    check_against,
    run_micro,
    write_report,
)
from repro.bench.micro import MicroResult, _check_agreement, make_workload
from repro.bench.report import load_report


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------
def test_workload_is_deterministic():
    a = make_workload(16, seed=3)
    b = make_workload(16, seed=3)
    assert a == b
    assert make_workload(16, seed=4).events != a.events


def test_workload_keeps_window_bounded():
    workload = make_workload(10, n_events=60)
    live = 0
    peak = 0
    for event in workload.events:
        live += 1 if event[0] == "admit" else -1
        peak = max(peak, live)
    assert peak == 11  # one over the window, drained immediately


def test_workload_rejects_degenerate_window():
    with pytest.raises(ValueError, match="window"):
        make_workload(1)


# ----------------------------------------------------------------------
# run_micro: differential measurement
# ----------------------------------------------------------------------
def test_run_micro_agrees_and_measures():
    result = run_micro(make_workload(12, n_events=40), repeats=1)
    assert result.flows == 12
    assert result.events == len(make_workload(12, n_events=40).events)
    assert result.oracle_wall_s > 0
    assert result.incremental_wall_s > 0
    assert result.vectorized_wall_s > 0
    assert result.solver_calls > 0
    assert result.links_touched > 0
    assert result.speedup == result.oracle_wall_s / result.incremental_wall_s
    assert (
        result.vectorized_speedup
        == result.oracle_wall_s / result.vectorized_wall_s
    )
    doc = result.as_dict()
    assert doc["vectorized_wall_s"] == result.vectorized_wall_s
    assert doc["vectorized_speedup"] == result.vectorized_speedup


def test_check_agreement_flags_divergence():
    with pytest.raises(AssertionError, match="flow 1 rate"):
        _check_agreement({1: 10.0}, {1: 11.0}, "demo")


# ----------------------------------------------------------------------
# Report round-trip and regression gating
# ----------------------------------------------------------------------
def _macro_entry(name, allocator, wall_s):
    return {
        "name": name,
        "kind": "macro",
        "allocator": allocator,
        "wall_s": wall_s,
        "makespan": 1.0,
        "events": 10,
        "solver_calls": 5,
        "links_touched": 20,
    }


def _report(calibration_s, wall_s):
    return {
        "schema": BENCH_SCHEMA,
        "created": "2026-08-06T00:00:00+00:00",
        "mode": "smoke",
        "calibration_s": calibration_s,
        "entries": [_macro_entry("fig13-point", "incremental", wall_s)],
    }


def test_write_and_load_report(tmp_path):
    path = write_report(
        [_macro_entry("fig13-point", "max-min", 1.0)],
        calibration_s=0.5,
        mode="smoke",
        path=tmp_path / "BENCH_test.json",
    )
    report = load_report(path)
    assert report["schema"] == BENCH_SCHEMA
    assert report["calibration_s"] == 0.5
    assert len(report["entries"]) == 1


def test_load_report_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "nope"}))
    with pytest.raises(ValueError, match="not a repro.bench/1 report"):
        load_report(path)


def test_check_against_passes_within_tolerance():
    baseline = _report(calibration_s=1.0, wall_s=10.0)
    current = _report(calibration_s=1.0, wall_s=12.0)  # +20% < 25%
    assert check_against(current, baseline, tolerance=0.25) == []


def test_check_against_fails_on_regression():
    baseline = _report(calibration_s=1.0, wall_s=10.0)
    current = _report(calibration_s=1.0, wall_s=13.0)  # +30% > 25%
    failures = check_against(current, baseline, tolerance=0.25)
    assert len(failures) == 1
    failure = failures[0]
    assert failure["name"] == "fig13-point"
    assert failure["allocator"] == "incremental"
    assert failure["metric"] == "wall_s"
    assert failure["measured_units"] == pytest.approx(13.0)
    assert failure["baseline_units"] == pytest.approx(10.0)
    assert failure["ratio"] == pytest.approx(1.3)
    assert failure["tolerance"] == 0.25
    # The record renders to a human line carrying the ratio, and is
    # JSON-serializable for the CLI's machine-readable output.
    from repro.bench import format_regression

    line = format_regression(failure)
    assert "fig13-point" in line and "1.30x" in line
    json.dumps(failure)


def test_check_against_cli_emits_json_line_and_fails(tmp_path, capsys):
    """``repro-bench --check-against`` on a regression exits nonzero,
    prints the measured-vs-baseline ratio, and emits one machine-
    readable JSON line."""
    from repro.bench.cli import main as bench_main

    # An impossibly fast committed baseline forces every macro entry to
    # regress regardless of this machine's speed.
    baseline = _report(calibration_s=1.0, wall_s=1e-9)
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    code = bench_main(
        [
            "--smoke",
            "-o",
            str(tmp_path / "current.json"),
            "--check-against",
            str(baseline_path),
        ]
    )
    assert code == 1
    captured = capsys.readouterr()
    assert "PERFORMANCE REGRESSION" in captured.err
    assert "vs baseline" in captured.err and "x, tolerance" in captured.err
    json_lines = [
        json.loads(line)
        for line in captured.out.splitlines()
        if line.startswith("{")
    ]
    assert len(json_lines) == 1
    payload = json_lines[0]
    regressions = payload["bench_regressions"]
    assert any(
        r["name"] == "fig13-point" and r["allocator"] == "incremental"
        for r in regressions
    )
    for r in regressions:
        assert r["ratio"] > 1.0
        assert r["measured_units"] > r["baseline_units"]


def test_check_against_normalizes_by_calibration():
    """A slower machine (2x calibration, 2x wall) is not a regression."""
    baseline = _report(calibration_s=1.0, wall_s=10.0)
    current = _report(calibration_s=2.0, wall_s=20.0)
    assert check_against(current, baseline, tolerance=0.25) == []


def test_check_against_ignores_unknown_entries():
    baseline = _report(calibration_s=1.0, wall_s=10.0)
    current = _report(calibration_s=1.0, wall_s=99.0)
    current["entries"][0]["name"] = "brand-new-bench"
    assert check_against(current, baseline) == []


def test_macro_smoke_trio_agrees():
    """The smoke macro scenario must give identical makespans across
    allocators (this is the assertion CI's bench step relies on)."""
    from repro.bench import MACRO_ALLOCATORS, macro_benchmarks

    results = macro_benchmarks(smoke=True)
    assert len(results) == 3
    assert {r.allocator for r in results} == set(MACRO_ALLOCATORS)
    assert len({r.makespan for r in results}) == 1
    assert all(r.solver_calls > 0 and r.events > 0 for r in results)
