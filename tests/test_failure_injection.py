"""Failure-injection tests: the system fails loudly and precisely.

A simulator that silently absorbs misconfiguration produces wrong
science; these tests pin down the failure behaviour of each layer.
"""

import pytest

from repro import des
from repro.compute import AllocationError, ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.platform.units import GB, MB
from repro.storage import (
    BBMode,
    InsufficientStorage,
    ParallelFileSystem,
    SharedBurstBuffer,
)
from repro.wms import AllBB, EngineConfig, WorkflowEngine
from repro.workflow import File, Task, Workflow

SPEED = TABLE_I["cori"]["core_speed"]


def build(workflow, bb_capacity=None, config=None):
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=1, n_bb_nodes=1))
    bb = SharedBurstBuffer(plat, ["bb0"], BBMode.PRIVATE, owner_host="cn0")
    if bb_capacity is not None:
        bb.capacity = bb_capacity
    engine = WorkflowEngine(
        plat,
        workflow,
        ComputeService(plat, ["cn0"]),
        ParallelFileSystem(plat),
        bb_for_host=lambda h: bb,
        placement=AllBB(),
        host_assignment=lambda t: "cn0",
        config=config,
    )
    return engine


def test_bb_overflow_mid_workflow_raises():
    """Writing outputs beyond the BB capacity aborts the run with a
    precise error instead of silently spilling."""
    tasks = [
        Task(
            f"t{i}",
            flops=SPEED,
            outputs=(File(f"big{i}", 600 * MB),),
            cores=1,
        )
        for i in range(3)
    ]
    engine = build(Workflow("overflow", tasks), bb_capacity=1 * GB)
    with pytest.raises(InsufficientStorage, match="cannot store"):
        engine.run()


def test_eviction_rescues_tight_capacity():
    """With eviction enabled, consumed intermediates leave the BB and a
    chain fits in a buffer smaller than its total data."""
    previous = File("c0", 600 * MB)
    tasks = [Task("t0", flops=SPEED, outputs=(previous,), cores=1)]
    for i in range(1, 4):
        out = File(f"c{i}", 600 * MB)
        tasks.append(
            Task(f"t{i}", flops=SPEED, inputs=(previous,), outputs=(out,), cores=1)
        )
        previous = out
    wf = Workflow("chain", tasks)

    # Without eviction: 4 × 600 MB > 1.4 GB → overflow.
    with pytest.raises(InsufficientStorage):
        build(wf, bb_capacity=1.4 * GB).run()

    # With eviction the same buffer suffices (≤ 2 files alive at once).
    engine = build(
        wf,
        bb_capacity=1.4 * GB,
        config=EngineConfig(evict_consumed_intermediates=True),
    )
    trace = engine.run()
    assert len(trace.records) == 4


def test_missing_route_raises_key_error():
    from repro.platform.spec import DiskSpec, HostSpec, PlatformSpec

    env = des.Environment()
    spec = PlatformSpec(
        name="isolated",
        hosts=(
            HostSpec(name="cn0", cores=4, core_speed=SPEED),
            HostSpec(
                name="pfs",
                cores=1,
                core_speed=SPEED,
                disks=(DiskSpec("lustre", read_bandwidth=1e8, write_bandwidth=1e8),),
            ),
        ),
    )
    plat = Platform(env, spec)
    pfs = ParallelFileSystem(plat)
    with pytest.raises(KeyError, match="no route"):
        env.run(until=pfs.write(File("f", MB), src_host="cn0"))


def test_task_larger_than_any_host_fails_fast():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    svc = ComputeService(plat, ["cn0"])
    with pytest.raises(AllocationError):
        svc.allocator("cn0").request(33)


def test_engine_surfaces_unknown_host_assignment():
    wf = Workflow("w", [Task("t", flops=SPEED, cores=1)])
    env = des.Environment()
    plat = Platform(env, cori_spec())
    engine = WorkflowEngine(
        plat,
        wf,
        ComputeService(plat, ["cn0"]),
        ParallelFileSystem(plat),
        host_assignment=lambda t: "ghost",
    )
    with pytest.raises(KeyError, match="ghost"):
        engine.run()


def test_workflow_consuming_nonexistent_file_fails_loudly():
    """A task reading a file nobody provides aborts with the file name."""
    orphan = File("never-produced", MB)
    consumer = Task("c", flops=SPEED, inputs=(orphan,), cores=1)
    # No producer, and the engine registers external inputs on the PFS —
    # but here we disable that by removing the file from the PFS first.
    engine = build(Workflow("w", [consumer]))
    engine.pfs.delete(orphan)  # sabotage after construction

    # File still gets registered during _initialize_files, so sabotage
    # the registry too to simulate a lost file.
    trace_error = None
    engine.registry.unregister(orphan, engine.pfs)
    try:
        engine._initialize_files = lambda: None  # skip re-registration
        engine.run()
    except Exception as exc:  # noqa: BLE001 - asserting the message below
        trace_error = exc
    assert trace_error is not None
    assert "never-produced" in str(trace_error)
