"""Tests for the metric primitives (counters, gauges, series, registry)."""

import pytest

from repro.obs import Counter, Gauge, MetricRegistry, TimeSeries


# ----------------------------------------------------------------------
# Counter
# ----------------------------------------------------------------------
def test_counter_accumulates():
    c = Counter("n")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5


def test_counter_rejects_negative():
    c = Counter("n")
    with pytest.raises(ValueError):
        c.inc(-1.0)


# ----------------------------------------------------------------------
# Gauge
# ----------------------------------------------------------------------
def test_gauge_keeps_last_value():
    g = Gauge("g")
    g.set(10.0)
    g.set(3.0)
    assert g.value == 3.0


# ----------------------------------------------------------------------
# TimeSeries
# ----------------------------------------------------------------------
def test_series_records_steps():
    s = TimeSeries("s")
    s.sample(0.0, 1.0)
    s.sample(2.0, 3.0)
    assert list(s.items()) == [(0.0, 1.0), (2.0, 3.0)]
    assert s.last == 3.0
    assert s.peak == 3.0
    assert len(s) == 2


def test_series_collapses_same_instant():
    # A DES processes many state changes at one instant; only the value
    # the instant settles on is observable.
    s = TimeSeries("s")
    s.sample(1.0, 5.0)
    s.sample(1.0, 7.0)
    s.sample(1.0, 2.0)
    assert list(s.items()) == [(1.0, 2.0)]


def test_series_same_instant_last_write_wins_after_real_step():
    """Regression: the collapse must keep working when the duplicate
    arrives *after* earlier distinct timestamps (the original bug fired
    only on the first same-instant pair of a busy series)."""
    s = TimeSeries("s")
    s.sample(0.0, 1.0)
    s.sample(1.0, 2.0)
    s.sample(1.0, 9.0)
    s.sample(1.0, 4.0)
    s.sample(3.0, 0.0)
    assert list(s.items()) == [(0.0, 1.0), (1.0, 4.0), (3.0, 0.0)]
    assert len(s) == 3


def test_series_timestamps_strictly_increasing_invariant():
    s = TimeSeries("s")
    for t, v in [(0.0, 1.0), (0.0, 2.0), (1.0, 3.0), (1.0, 3.0), (2.0, 0.0)]:
        s.sample(t, v)
    assert s.times == sorted(set(s.times))


def test_contended_run_exports_strictly_increasing_series():
    """End-to-end regression for the same-instant duplicate: a
    contended run grants/releases many core allocations in a single
    simulated instant, so every exported series must still carry
    strictly increasing, duplicate-free timestamps."""
    from repro.obs import Observer
    from repro.scenarios import run_genomes

    obs = Observer()
    run_genomes(n_chromosomes=6, n_compute=2, observer=obs)
    snap = obs.registry.snapshot()
    assert snap["series"], "expected the run to export time series"
    for name, series in snap["series"].items():
        times = series["times"]
        assert times == sorted(times), name
        assert len(times) == len(set(times)), f"{name}: duplicate timestamps"


def test_series_rejects_time_travel():
    s = TimeSeries("s")
    s.sample(2.0, 1.0)
    with pytest.raises(ValueError):
        s.sample(1.0, 1.0)


def test_empty_series_properties():
    s = TimeSeries("s")
    assert s.last is None
    assert s.peak is None
    assert len(s) == 0


# ----------------------------------------------------------------------
# MetricRegistry
# ----------------------------------------------------------------------
def test_registry_lazy_creation_is_idempotent():
    r = MetricRegistry()
    assert r.counter("a.b.c") is r.counter("a.b.c")
    assert r.gauge("a.b.g") is r.gauge("a.b.g")
    assert r.timeseries("a.b.s") is r.timeseries("a.b.s")
    assert len(r) == 3
    assert r.names() == ["a.b.c", "a.b.g", "a.b.s"]


def test_registry_rejects_kind_collision():
    r = MetricRegistry()
    r.counter("x")
    with pytest.raises(ValueError):
        r.gauge("x")
    with pytest.raises(ValueError):
        r.timeseries("x")


def test_registry_snapshot_is_plain_data():
    import json

    r = MetricRegistry()
    r.counter("c").inc(2)
    r.gauge("g").set(7.0)
    r.timeseries("s").sample(0.0, 1.0)
    snap = r.snapshot()
    assert snap == json.loads(json.dumps(snap))
    assert snap["counters"] == {"c": 2.0}
    assert snap["gauges"] == {"g": 7.0}
    assert snap["series"] == {"s": {"times": [0.0], "values": [1.0]}}
