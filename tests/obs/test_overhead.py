"""The observability contract: zero influence, near-zero disabled cost.

Two guarantees from the ISSUE's acceptance criteria:

1. **Bit-identical results.**  Observers only record — they never
   schedule events or touch simulated state — so an instrumented run's
   trace is byte-for-byte the trace of an uninstrumented run.
2. **<2% disabled overhead.**  With no observer attached, each hook
   site costs one attribute load plus an identity check.  A wall-clock
   A/B comparison of full runs is hopelessly noisy in CI, so the bound
   is established structurally: (number of hook invocations a full
   scenario would make) x (measured per-guard cost) must stay under 2%
   of the scenario's uninstrumented runtime.
"""

import itertools
import time
import timeit

from repro.obs import LiveBus, Observer
from repro.scenarios import run_swarp


def counting_observer():
    """An Observer whose every hook also counts its invocation."""
    obs = Observer()
    counts = {"hooks": 0}
    for name in dir(Observer):
        if not name.startswith("on_"):
            continue
        original = getattr(obs, name)

        def wrapper(*args, _original=original, **kwargs):
            counts["hooks"] += 1
            return _original(*args, **kwargs)

        setattr(obs, name, wrapper)
    return obs, counts


def test_observed_run_is_bit_identical():
    plain = run_swarp(n_pipelines=2).trace
    observed = run_swarp(n_pipelines=2, observer=Observer()).trace
    assert observed.makespan == plain.makespan
    assert observed.to_json() == plain.to_json()


def test_contended_run_with_wait_hooks_is_bit_identical():
    """The PR's new blocked/unblocked decision sites must preserve the
    zero-influence contract under contention, where they actually fire."""
    from repro.scenarios import run_genomes

    plain = run_genomes(n_chromosomes=6, n_compute=2).trace
    obs = Observer()
    observed = run_genomes(n_chromosomes=6, n_compute=2, observer=obs).trace
    assert observed.to_json() == plain.to_json()
    assert obs.waits, "contended run should have recorded wait intervals"


def test_wait_hooks_fire_on_contended_scenario():
    from repro.scenarios import run_genomes

    obs, counts = counting_observer()
    wait_calls = {"blocked": 0, "unblocked": 0}
    inner_blocked = obs.on_task_blocked
    inner_unblocked = obs.on_task_unblocked

    def blocked(*args, **kwargs):
        wait_calls["blocked"] += 1
        return inner_blocked(*args, **kwargs)

    def unblocked(*args, **kwargs):
        wait_calls["unblocked"] += 1
        return inner_unblocked(*args, **kwargs)

    obs.on_task_blocked = blocked
    obs.on_task_unblocked = unblocked
    run_genomes(n_chromosomes=6, n_compute=2, observer=obs)
    assert wait_calls["blocked"] > 0
    assert wait_calls["unblocked"] >= wait_calls["blocked"]


def test_live_bus_and_monitors_are_bit_identical(tmp_path):
    """The live path — bus flushes, monitors, event log — is pure
    observation too: a fully instrumented run reproduces the plain trace
    byte for byte."""
    clock = itertools.count().__next__
    bus = LiveBus(tmp_path / "live", flush_every=8,
                  clock=lambda: float(clock()))
    obs = Observer(monitors=True, bus=bus)
    plain = run_swarp(n_pipelines=2).trace
    live = run_swarp(n_pipelines=2, observer=obs).trace
    bus.close()
    assert live.to_json() == plain.to_json()
    assert obs.events, "live run should have recorded events"


def test_live_enabled_overhead_within_two_percent(tmp_path):
    """With the bus attached, per-hook cost is the guard plus an append
    to a bounded deque; a flush touches disk only every ``flush_every``
    pushes.  Only event-bearing hooks push (metric-only hooks never
    touch the bus), so the bound is: (actual pushes this scenario makes)
    x (measured per-push cost, doubled to cover the amortized flush
    share) must stay under 2% of the uninstrumented runtime."""
    bus = LiveBus(tmp_path / "live", flush_every=256)
    pushes = {"n": 0}
    inner_push = bus.push

    def counting_push(record):
        pushes["n"] += 1
        return inner_push(record)

    bus.push = counting_push
    obs = Observer(bus=bus)
    run_swarp(n_pipelines=2, observer=obs)
    bus.close()
    n_pushes = pushes["n"]
    assert n_pushes > 0

    # Per-push steady-state cost, measured on a real bus with the flush
    # disabled (its amortized share is covered by the 2x below).
    probe = LiveBus(tmp_path / "probe", ring_size=512, flush_every=10**9)
    loops = 50_000
    push_cost = (
        timeit.timeit("probe.push({'kind': 'event', 'i': 0})",
                      globals={"probe": probe}, number=loops)
        / loops
    )
    probe.close()

    runtimes = []
    for _ in range(3):
        begin = time.perf_counter()
        run_swarp(n_pipelines=2)
        runtimes.append(time.perf_counter() - begin)
    runtime = min(runtimes)

    overhead = n_pushes * push_cost * 2
    assert overhead < 0.02 * runtime, (
        f"{n_pushes} bus pushes x {push_cost * 1e9:.1f} ns x 2 = "
        f"{overhead * 1e3:.3f} ms, over 2% of {runtime * 1e3:.1f} ms"
    )


def test_disabled_overhead_under_two_percent():
    # How many times would hooks fire on this scenario?
    obs, counts = counting_observer()
    run_swarp(n_pipelines=2, observer=obs)
    n_hooks = counts["hooks"]
    assert n_hooks > 0

    # Per-site disabled cost: one attribute load + identity check.
    class Env:
        obs = None

    env = Env()
    loops = 100_000
    guard_cost = (
        timeit.timeit("env.obs is not None", globals={"env": env}, number=loops)
        / loops
    )

    # Uninstrumented scenario runtime (best of 3 damps CI noise).
    runtimes = []
    for _ in range(3):
        begin = time.perf_counter()
        run_swarp(n_pipelines=2)
        runtimes.append(time.perf_counter() - begin)
    runtime = min(runtimes)

    overhead = n_hooks * guard_cost
    assert overhead < 0.02 * runtime, (
        f"{n_hooks} hook guards x {guard_cost * 1e9:.1f} ns = "
        f"{overhead * 1e3:.3f} ms, over 2% of {runtime * 1e3:.1f} ms"
    )
