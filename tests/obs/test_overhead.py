"""The observability contract: zero influence, near-zero disabled cost.

Two guarantees from the ISSUE's acceptance criteria:

1. **Bit-identical results.**  Observers only record — they never
   schedule events or touch simulated state — so an instrumented run's
   trace is byte-for-byte the trace of an uninstrumented run.
2. **<2% disabled overhead.**  With no observer attached, each hook
   site costs one attribute load plus an identity check.  A wall-clock
   A/B comparison of full runs is hopelessly noisy in CI, so the bound
   is established structurally: (number of hook invocations a full
   scenario would make) x (measured per-guard cost) must stay under 2%
   of the scenario's uninstrumented runtime.
"""

import time
import timeit

from repro.obs import Observer
from repro.scenarios import run_swarp


def counting_observer():
    """An Observer whose every hook also counts its invocation."""
    obs = Observer()
    counts = {"hooks": 0}
    for name in dir(Observer):
        if not name.startswith("on_"):
            continue
        original = getattr(obs, name)

        def wrapper(*args, _original=original, **kwargs):
            counts["hooks"] += 1
            return _original(*args, **kwargs)

        setattr(obs, name, wrapper)
    return obs, counts


def test_observed_run_is_bit_identical():
    plain = run_swarp(n_pipelines=2).trace
    observed = run_swarp(n_pipelines=2, observer=Observer()).trace
    assert observed.makespan == plain.makespan
    assert observed.to_json() == plain.to_json()


def test_contended_run_with_wait_hooks_is_bit_identical():
    """The PR's new blocked/unblocked decision sites must preserve the
    zero-influence contract under contention, where they actually fire."""
    from repro.scenarios import run_genomes

    plain = run_genomes(n_chromosomes=6, n_compute=2).trace
    obs = Observer()
    observed = run_genomes(n_chromosomes=6, n_compute=2, observer=obs).trace
    assert observed.to_json() == plain.to_json()
    assert obs.waits, "contended run should have recorded wait intervals"


def test_wait_hooks_fire_on_contended_scenario():
    from repro.scenarios import run_genomes

    obs, counts = counting_observer()
    wait_calls = {"blocked": 0, "unblocked": 0}
    inner_blocked = obs.on_task_blocked
    inner_unblocked = obs.on_task_unblocked

    def blocked(*args, **kwargs):
        wait_calls["blocked"] += 1
        return inner_blocked(*args, **kwargs)

    def unblocked(*args, **kwargs):
        wait_calls["unblocked"] += 1
        return inner_unblocked(*args, **kwargs)

    obs.on_task_blocked = blocked
    obs.on_task_unblocked = unblocked
    run_genomes(n_chromosomes=6, n_compute=2, observer=obs)
    assert wait_calls["blocked"] > 0
    assert wait_calls["unblocked"] >= wait_calls["blocked"]


def test_disabled_overhead_under_two_percent():
    # How many times would hooks fire on this scenario?
    obs, counts = counting_observer()
    run_swarp(n_pipelines=2, observer=obs)
    n_hooks = counts["hooks"]
    assert n_hooks > 0

    # Per-site disabled cost: one attribute load + identity check.
    class Env:
        obs = None

    env = Env()
    loops = 100_000
    guard_cost = (
        timeit.timeit("env.obs is not None", globals={"env": env}, number=loops)
        / loops
    )

    # Uninstrumented scenario runtime (best of 3 damps CI noise).
    runtimes = []
    for _ in range(3):
        begin = time.perf_counter()
        run_swarp(n_pipelines=2)
        runtimes.append(time.perf_counter() - begin)
    runtime = min(runtimes)

    overhead = n_hooks * guard_cost
    assert overhead < 0.02 * runtime, (
        f"{n_hooks} hook guards x {guard_cost * 1e9:.1f} ns = "
        f"{overhead * 1e3:.3f} ms, over 2% of {runtime * 1e3:.1f} ms"
    )
