"""Observer unit tests: lifecycle, group filtering, hooks, spans."""

import pytest

from repro import des
from repro.obs import METRIC_GROUPS, Observer, Span, spans_from_record
from repro.traces import TaskRecord


def make_record(**kw):
    defaults = dict(
        name="t", group="g", host="cn0", cores=4,
        start=0.0, read_start=0.0, read_end=2.0,
        compute_end=8.0, write_end=10.0, end=10.0,
    )
    defaults.update(kw)
    return TaskRecord(**defaults)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_attach_sets_env_obs():
    env = des.Environment()
    obs = Observer().attach(env)
    assert env.obs is obs
    assert obs.now == env.now


def test_attach_twice_same_env_is_fine():
    env = des.Environment()
    obs = Observer().attach(env)
    obs.attach(env)
    assert env.obs is obs


def test_attach_to_second_env_rejected():
    obs = Observer().attach(des.Environment())
    with pytest.raises(ValueError):
        obs.attach(des.Environment())


def test_detach_restores_disabled_path():
    env = des.Environment()
    obs = Observer().attach(env)
    obs.detach()
    assert env.obs is None
    assert obs.env is None
    with pytest.raises(RuntimeError):
        obs.now


def test_unknown_metric_group_rejected():
    with pytest.raises(ValueError):
        Observer(metrics=["storage", "nonsense"])


def test_default_collects_all_groups():
    assert Observer().groups == frozenset(METRIC_GROUPS)


# ----------------------------------------------------------------------
# Hooks record into the registry
# ----------------------------------------------------------------------
def test_storage_hooks():
    obs = Observer().attach(des.Environment())
    obs.on_storage_occupancy("bb", used=100.0, capacity=1000.0)
    obs.on_storage_op("bb", "write", 100.0)
    obs.on_storage_op("bb", "write", 50.0)
    r = obs.registry
    assert r.timeseries("storage.bb.occupancy_bytes").last == 100.0
    assert r.gauge("storage.bb.capacity_bytes").value == 1000.0
    assert r.counter("storage.bb.write_ops").value == 2
    assert r.counter("storage.bb.write_bytes").value == 150.0
    assert r.timeseries("storage.bb.cumulative_write_bytes").last == 150.0


def test_compute_and_engine_hooks():
    obs = Observer().attach(des.Environment())
    obs.on_core_allocation("cn0", busy=8, total=32, queued=1)
    obs.on_ready_depth(3)
    obs.on_task_complete(make_record(), "compute")
    r = obs.registry
    assert r.timeseries("compute.cn0.busy_cores").last == 8
    assert r.gauge("compute.cn0.total_cores").value == 32
    assert r.timeseries("compute.cn0.queue_depth").last == 1
    assert r.timeseries("engine.ready_tasks").last == 3
    assert r.counter("engine.tasks_completed").value == 1
    assert obs.spans  # lifecycle spans derived from the record


def test_group_filter_drops_other_groups():
    obs = Observer(metrics=["storage"]).attach(des.Environment())
    obs.on_storage_occupancy("bb", 1.0, 2.0)
    obs.on_core_allocation("cn0", 1, 2, 0)
    obs.on_ready_depth(1)
    obs.on_event_processed()
    names = obs.registry.names()
    assert names == ["storage.bb.capacity_bytes", "storage.bb.occupancy_bytes"]


def test_flow_hooks_derive_service_bandwidth():
    env = des.Environment()
    obs = Observer().attach(env)

    class FakeFlow:
        size = 1000.0
        label = "bb:read:f1"
        achieved_bandwidth = 250.0

    obs.on_flow_admitted(1)
    env._now = 4.0
    obs.on_flow_finished(FakeFlow(), 0)
    r = obs.registry
    assert list(r.timeseries("network.active_flows").items()) == [(0.0, 1), (4.0, 0)]
    assert r.counter("network.flows_completed").value == 1
    assert r.counter("network.bytes_completed").value == 1000.0
    assert r.timeseries("network.bb.achieved_bandwidth").last == 250.0


def test_flow_without_bandwidth_skips_series():
    obs = Observer().attach(des.Environment())

    class InstantFlow:
        size = 0.0
        label = ""
        achieved_bandwidth = None

    obs.on_flow_finished(InstantFlow(), 0)
    assert "network.unlabeled.achieved_bandwidth" not in obs.registry.names()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_spans_from_compute_record():
    spans = spans_from_record(make_record(), "compute")
    assert [s.name for s in spans] == ["t", "t:read", "t:compute", "t:write"]
    task = spans[0]
    assert isinstance(task, Span)
    assert task.track == "cn0"
    assert task.duration == 10.0
    assert task.args["cores"] == 4
    # Phases tile the task span.
    assert [(s.start, s.end) for s in spans[1:]] == [(0.0, 2.0), (2.0, 8.0), (8.0, 10.0)]


def test_spans_zero_duration_phase_omitted():
    record = make_record(read_start=0.0, read_end=0.0)
    spans = spans_from_record(record, "compute")
    assert [s.name for s in spans] == ["t", "t:compute", "t:write"]


def test_spans_from_staging_record():
    record = make_record(name="in", read_end=0.0, compute_end=0.0, write_end=0.0, end=5.0)
    spans = spans_from_record(record, "stage_in")
    assert [s.name for s in spans] == ["in", "in:stage-in"]
    assert spans[1].category == "stage-in"
    assert (spans[1].start, spans[1].end) == (0.0, 5.0)
