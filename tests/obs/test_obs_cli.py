"""``repro-obs`` CLI: validate exit codes, watch rendering, HTML report."""

import itertools
import json

from repro.obs import LiveBus, Observer, export_run
from repro.obs.cli import main, quantile, sweep_eta
from repro.scenarios import run_swarp
from repro.sweep import SweepSpec, SweepTelemetry, run_sweep


def _clock(start=100.0):
    counter = itertools.count()
    return lambda: start + float(next(counter))


def _finished_sweep(tmp_path):
    spec = SweepSpec.cartesian(
        "demo", "tests.sweep.points:square", axes={"x": [1, 2, 3]}
    )
    telemetry = SweepTelemetry("demo")
    run_sweep(spec, live_dir=tmp_path / "live", telemetry=telemetry)
    return tmp_path / "live"


def _mid_flight_sweep(tmp_path):
    """A live dir as a crashed/running 4-worker sweep would leave it."""
    from repro.sweep.live import SweepLiveWriter

    telemetry = SweepTelemetry("midflight")
    telemetry.total.set(8.0)
    writer = SweepLiveWriter(tmp_path / "live", telemetry, clock=_clock())
    for pid in ("x=1", "x=2"):
        writer.record("point_started", pid, attempt=1)
        telemetry.completed.inc()
        telemetry.point_seconds.observe(1.5)
        writer.record("point_completed", pid, duration=1.5)
    telemetry.in_flight.set(4.0)
    for pid in ("x=3", "x=4", "x=5", "x=6"):
        writer.record("point_started", pid, attempt=1)
    return tmp_path / "live"  # never closed: heartbeat stays open


# ----------------------------------------------------------------------
# validate
# ----------------------------------------------------------------------
def test_validate_subcommand_matches_module_validator(tmp_path, capsys):
    obs = Observer()
    run_swarp(n_pipelines=1, observer=obs)
    out = export_run(obs, tmp_path / "telemetry")
    assert main(["validate", str(out)]) == 0
    assert "ok" in capsys.readouterr().out
    assert main(["validate", str(tmp_path / "nope")]) == 1


# ----------------------------------------------------------------------
# watch
# ----------------------------------------------------------------------
def test_watch_once_on_finished_sweep(tmp_path, capsys):
    live = _finished_sweep(tmp_path)
    assert main(["watch", "--once", str(live)]) == 0
    frame = capsys.readouterr().out
    assert "sweep demo — DONE" in frame
    assert "3/3 points" in frame
    assert "3 completed" in frame
    assert "p50" in frame and "p99" in frame


def test_watch_once_on_mid_flight_sweep(tmp_path, capsys):
    live = _mid_flight_sweep(tmp_path)
    assert main(["watch", "--once", str(live)]) == 0
    frame = capsys.readouterr().out
    assert "2/8 points" in frame
    assert "in flight (4):" in frame
    assert "x=3 — running" in frame
    assert "ETA" in frame


def test_watch_once_on_simulation_live_dir(tmp_path, capsys):
    bus = LiveBus(tmp_path / "live", flush_every=16, clock=_clock())
    obs = Observer(bus=bus)
    run_swarp(n_pipelines=1, observer=obs)
    bus.close()
    assert main(["watch", "--once", str(tmp_path / "live")]) == 0
    frame = capsys.readouterr().out
    assert "DONE" in frame
    assert "sim time" in frame
    assert "dropped" in frame


def test_watch_rejects_non_live_directory(tmp_path, capsys):
    assert main(["watch", "--once", str(tmp_path)]) == 2
    assert "heartbeat" in capsys.readouterr().err


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def test_report_writes_self_contained_html(tmp_path, capsys):
    live = _finished_sweep(tmp_path)
    out = tmp_path / "report.html"
    assert main(["report", str(live), "-o", str(out)]) == 0
    html = out.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "Sweep demo" in html
    assert "✓ completed" in html            # status = icon + label, not color alone
    assert "prefers-color-scheme: dark" in html  # dark mode is selected, not flipped
    assert 'data-theme="dark"' in html
    assert "--series-1" in html
    assert "x=2" in html
    assert "<script" not in html            # static: no external or inline JS needed


def test_report_on_mid_flight_dir(tmp_path):
    live = _mid_flight_sweep(tmp_path)
    out = tmp_path / "report.html"
    assert main(["report", str(live), "-o", str(out)]) == 0
    html = out.read_text()
    assert "status: running" in html
    assert "• running" in html


def test_report_rejects_simulation_live_dir(tmp_path, capsys):
    bus = LiveBus(tmp_path / "live", clock=_clock())
    Observer(bus=bus)
    bus.close()
    assert main(["report", str(tmp_path / "live")]) == 2
    assert "sweep live directory" in capsys.readouterr().err


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def test_quantile_nearest_rank():
    assert quantile([], 0.5) is None
    assert quantile([3.0], 0.99) == 3.0
    assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0
    samples = [float(i) for i in range(1, 102)]
    assert quantile(samples, 0.5) == 51.0
    assert quantile(samples, 0.99) == 100.0


def test_sweep_eta_scales_with_parallelism():
    progress = {"total": 10, "completed": 2, "cached": 0, "failed": 0,
                "in_flight": 4}
    eta = sweep_eta(progress, [2.0, 2.0])
    assert eta == 8 * 2.0 / 4
    assert sweep_eta({"total": 2, "completed": 2}, [1.0]) is None
    assert sweep_eta(progress, []) is None
