"""Structured event log (``repro.obs.log/1``): schema, emission, export."""

import json

import pytest

from repro.obs import (
    COMPONENTS,
    LOG_SCHEMA,
    Observer,
    export_run,
    iter_ndjson,
    make_event,
    read_events,
    validate_events_ndjson,
    write_events,
)
from repro.obs.observer import RECENT_EVENT_WINDOW
from repro.scenarios import run_swarp


# ----------------------------------------------------------------------
# Record / stream primitives
# ----------------------------------------------------------------------
def test_make_event_envelope():
    record = make_event(1.5, "storage", "file_added", {"size": 3})
    assert record == {
        "ts": None,
        "sim_time": 1.5,
        "component": "storage",
        "event": "file_added",
        "fields": {"size": 3},
    }


def test_write_read_roundtrip(tmp_path):
    events = [
        make_event(0.0, "des", "sim_started"),
        make_event(2.0, "wms", "task_ready", {"task": "t1"}),
    ]
    path = write_events(events, tmp_path / "events.ndjson")
    lines = path.read_text().splitlines()
    assert json.loads(lines[0]) == {"schema": LOG_SCHEMA}
    assert read_events(path) == events


def test_read_events_rejects_wrong_header(tmp_path):
    path = tmp_path / "bad.ndjson"
    path.write_text('{"schema": "something/9"}\n')
    with pytest.raises(ValueError, match="repro.obs.log"):
        read_events(path)


def test_iter_ndjson_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "stream.ndjson"
    path.write_text(
        '{"schema": "repro.obs.log/1"}\n{"a": 1}\n{"trunc'
    )
    assert list(iter_ndjson(path)) == [{"schema": LOG_SCHEMA}, {"a": 1}]
    # A corrupt line that is *not* the unterminated tail still raises.
    path.write_text('{"a": 1}\n{bad}\n{"b": 2}\n')
    with pytest.raises(json.JSONDecodeError):
        list(iter_ndjson(path))


# ----------------------------------------------------------------------
# Observer emission
# ----------------------------------------------------------------------
def test_log_event_stamps_sim_time():
    from repro import des

    env = des.Environment()
    obs = Observer().attach(env)
    env._now = 4.25
    record = obs.log_event("compute", "cores_granted", host="cn0", cores=8)
    assert record["sim_time"] == 4.25
    assert record["ts"] is None
    assert obs.events == [record]


def test_recent_event_window_is_bounded():
    obs = Observer()
    for i in range(3 * RECENT_EVENT_WINDOW):
        obs.log_event("obs", "tick", i=i)
    assert len(obs.events) == 3 * RECENT_EVENT_WINDOW
    assert len(obs.recent_events) == RECENT_EVENT_WINDOW
    assert obs.recent_events[-1]["fields"]["i"] == 3 * RECENT_EVENT_WINDOW - 1


def test_scenario_emits_events_across_subsystems():
    obs = Observer()
    run_swarp(n_pipelines=2, observer=obs)
    components = {e["component"] for e in obs.events}
    assert {"network", "storage", "compute", "wms"} <= components
    assert all(e["component"] in COMPONENTS for e in obs.events)
    names = {e["event"] for e in obs.events}
    assert {"flow_completed", "task_start", "task_end", "cores_granted"} <= names


def test_event_log_export_is_deterministic(tmp_path):
    streams = []
    for run in ("a", "b"):
        obs = Observer()
        run_swarp(n_pipelines=2, observer=obs)
        out = export_run(obs, tmp_path / run)
        streams.append((out / "events.ndjson").read_bytes())
    assert streams[0] == streams[1]
    assert validate_events_ndjson(tmp_path / "a" / "events.ndjson") == []


# ----------------------------------------------------------------------
# Validator
# ----------------------------------------------------------------------
def test_validate_events_catches_violations(tmp_path):
    path = tmp_path / "events.ndjson"

    path.write_text("")
    assert any("empty" in e for e in validate_events_ndjson(path))

    path.write_text('{"schema": "wrong/1"}\n')
    assert any("header" in e for e in validate_events_ndjson(path))

    header = json.dumps({"schema": LOG_SCHEMA})
    bad = [
        {"ts": None, "sim_time": -1.0, "component": "wms",
         "event": "x", "fields": {}},
        {"ts": None, "sim_time": 0.0, "component": "kernel",
         "event": "x", "fields": {}},
        {"ts": "late", "sim_time": 0.0, "component": "wms",
         "event": "x", "fields": {}},
        {"ts": None, "sim_time": 0.0, "component": "wms",
         "event": "x", "fields": []},
        {"sim_time": 0.0, "component": "wms", "event": "x"},
    ]
    path.write_text(
        "\n".join([header] + [json.dumps(r) for r in bad]) + "\n"
    )
    errors = validate_events_ndjson(path)
    assert any("negative sim_time" in e for e in errors)
    assert any("unknown component" in e for e in errors)
    assert any("non-numeric ts" in e for e in errors)
    assert any("fields is not an object" in e for e in errors)
    assert any("missing" in e for e in errors)
