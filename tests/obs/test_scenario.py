"""End-to-end: a full instrumented scenario produces valid telemetry.

These are the acceptance checks of the observability layer: running a
real scenario with an observer attached yields a loadable Chrome trace,
occupancy series that respect BB capacity, and a manifest that
reconstructs the exact simulator configuration.
"""

import json

import pytest

from repro.obs import (
    Observer,
    chrome_trace,
    config_from_manifest,
    export_run,
    validate_chrome_trace,
    validate_obs_dir,
)
from repro.platform.presets import cori_spec
from repro.scenarios import run_swarp
from repro.simulator import Simulator, SimulatorConfig
from repro.storage import BBMode
from repro.workflow.swarp import make_swarp


@pytest.fixture(scope="module")
def observed_run():
    obs = Observer()
    result = run_swarp(n_pipelines=2, observer=obs)
    return obs, result


def test_scenario_collects_all_groups(observed_run):
    obs, _ = observed_run
    names = obs.registry.names()
    prefixes = {name.split(".", 1)[0] for name in names}
    assert prefixes == {"storage", "network", "compute", "engine", "des"}
    assert obs.spans


def test_bb_occupancy_stays_under_capacity(observed_run):
    obs, _ = observed_run
    occupancies = [
        name
        for name in obs.registry.names()
        if name.startswith("storage.") and name.endswith(".occupancy_bytes")
    ]
    assert occupancies
    for name in occupancies:
        service = name[len("storage.") : -len(".occupancy_bytes")]
        capacity = obs.registry.gauge(f"storage.{service}.capacity_bytes").value
        series = obs.registry.timeseries(name)
        assert series.peak is not None
        assert series.peak <= capacity
        assert all(v >= 0 for v in series.values)


def test_tasks_completed_matches_trace(observed_run):
    obs, result = observed_run
    completed = obs.registry.counter("engine.tasks_completed").value
    assert completed == len(result.trace.records)
    # One enclosing span per task (plus phase children).
    task_names = {s.name for s in obs.spans if ":" not in s.name}
    assert task_names == set(result.trace.records)


def test_scenario_trace_exports_valid(observed_run, tmp_path_factory):
    obs, _ = observed_run
    assert validate_chrome_trace(chrome_trace(obs)) == []
    out = export_run(obs, tmp_path_factory.mktemp("telemetry"))
    assert validate_obs_dir(out) == []


def test_simulator_export_telemetry_roundtrips_config(tmp_path):
    config = SimulatorConfig(bb_mode=BBMode.PRIVATE, output_fraction=1.0)
    simulator = Simulator(
        cori_spec(n_compute=1, n_bb_nodes=2),
        make_swarp(n_pipelines=1),
        config,
        observer=Observer(),
    )
    trace = simulator.run()
    out = simulator.export_telemetry(tmp_path / "telemetry", trace=trace)
    assert validate_obs_dir(out) == []
    doc = json.loads((out / "manifest.json").read_text())
    assert config_from_manifest(doc) == config
    assert doc["result"]["makespan"] == trace.makespan
    assert doc["workflow"]["n_tasks"] == len(make_swarp(n_pipelines=1))


def test_simulator_without_observer_cannot_export(tmp_path):
    simulator = Simulator(cori_spec(), make_swarp())
    simulator.run()
    with pytest.raises(ValueError):
        simulator.export_telemetry(tmp_path)
