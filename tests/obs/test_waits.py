"""Wait-cause instrumentation: blocked/unblocked hooks at decision sites.

The profiler's causal signal — every interval during which a task could
not make progress is recorded with a closed-enum cause (SIM070 enforces
the closed set at call sites).
"""

import pytest

from repro import des
from repro.compute import CoreAllocator
from repro.obs import Observer, WaitCause, WaitInterval
from repro.platform import Platform
from repro.platform.presets import cori_spec
from repro.platform.units import GiB
from repro.scenarios import run_genomes, run_swarp
from repro.storage.base import InsufficientStorage
from repro.storage.provisioning import BBProvisioner


# ----------------------------------------------------------------------
# Observer bookkeeping
# ----------------------------------------------------------------------
def _attached_observer(**kwargs):
    env = des.Environment()
    obs = Observer(**kwargs).attach(env)
    return env, obs


def test_blocked_then_unblocked_records_interval():
    env, obs = _attached_observer()
    obs.on_task_blocked("t", WaitCause.CORES, detail="cn0")
    env.run(until=env.timeout(3.5))
    obs.on_task_unblocked("t", WaitCause.CORES)
    assert obs.waits == [
        WaitInterval(task="t", cause=WaitCause.CORES, start=0.0, end=3.5,
                     detail="cn0")
    ]
    assert obs.waits[0].duration == 3.5
    assert obs.registry.counter("engine.wait.cores_seconds").value == 3.5


def test_zero_duration_wait_dropped():
    _, obs = _attached_observer()
    obs.on_task_blocked("t", WaitCause.DEPENDENCY)
    obs.on_task_unblocked("t", WaitCause.DEPENDENCY)
    assert obs.waits == []


def test_unmatched_unblock_ignored():
    _, obs = _attached_observer()
    obs.on_task_unblocked("ghost", WaitCause.BB_CAPACITY)
    assert obs.waits == []


def test_double_block_keeps_original_start():
    env, obs = _attached_observer()
    obs.on_task_blocked("t", WaitCause.MEMORY)
    env.run(until=env.timeout(1.0))
    obs.on_task_blocked("t", WaitCause.MEMORY)  # refresh, not restart
    env.run(until=env.timeout(1.0))
    obs.on_task_unblocked("t", WaitCause.MEMORY)
    assert obs.waits[0].start == 0.0
    assert obs.waits[0].end == 2.0


def test_distinct_causes_tracked_independently():
    env, obs = _attached_observer()
    obs.on_task_blocked("t", WaitCause.CORES)
    obs.on_task_blocked("t", WaitCause.MEMORY)
    env.run(until=env.timeout(2.0))
    obs.on_task_unblocked("t", WaitCause.CORES)
    env.run(until=env.timeout(1.0))
    obs.on_task_unblocked("t", WaitCause.MEMORY)
    assert {(w.cause, w.duration) for w in obs.waits} == {
        (WaitCause.CORES, 2.0),
        (WaitCause.MEMORY, 3.0),
    }


def test_engine_group_disabled_records_nothing():
    env, obs = _attached_observer(metrics=["storage", "network"])
    obs.on_task_blocked("t", WaitCause.CORES)
    env.run(until=env.timeout(5.0))
    obs.on_task_unblocked("t", WaitCause.CORES)
    assert obs.waits == []
    assert obs._open_waits == {}


# ----------------------------------------------------------------------
# Core allocator decision site
# ----------------------------------------------------------------------
def test_allocator_emits_cores_wait_end_to_end():
    env = des.Environment()
    obs = Observer().attach(env)
    alloc = CoreAllocator(env, 4)

    def holder(env):
        a = yield alloc.request(4, task="holder")
        yield env.timeout(5)
        a.release()

    def waiter(env):
        yield env.timeout(1)
        a = yield alloc.request(2, task="waiter")
        a.release()

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert [
        (w.task, w.cause, w.start, w.end) for w in obs.waits
    ] == [("waiter", WaitCause.CORES, 1.0, 5.0)]
    assert obs.registry.counter("engine.wait.cores_seconds").value == 4.0


def test_allocator_immediate_grant_emits_no_wait():
    env = des.Environment()
    obs = Observer().attach(env)
    alloc = CoreAllocator(env, 8)

    def proc(env):
        a = yield alloc.request(2, task="quick")
        a.release()

    env.run(until=env.process(proc(env)))
    assert obs.waits == []


# ----------------------------------------------------------------------
# BB provisioner decision site
# ----------------------------------------------------------------------
@pytest.fixture
def bb_platform():
    env = des.Environment()
    return Platform(env, cori_spec(n_compute=1, n_bb_nodes=2))


def test_bb_capacity_wait_through_queue(bb_platform):
    env = bb_platform.env
    obs = Observer().attach(env)
    # 2 nodes with a tiny granule budget: 2 granules total.
    prov = BBProvisioner(bb_platform, granularity=3.2e12)
    assert prov.total_granules == 4

    leases = []

    def first(env):
        event = prov.request(4 * 3.2e12, job="jobA")  # whole pool
        lease = yield event
        leases.append(("A", env.now))
        yield env.timeout(10)
        lease.release()

    def second(env):
        yield env.timeout(1)
        lease = yield prov.request(3.2e12, job="jobB")  # must queue
        leases.append(("B", env.now))
        lease.release()

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert leases == [("A", 0.0), ("B", 10.0)]
    assert [(w.task, w.cause, w.start, w.end) for w in obs.waits] == [
        ("jobB", WaitCause.BB_CAPACITY, 1.0, 10.0)
    ]
    assert obs.registry.counter(
        "engine.wait.bb_capacity_seconds"
    ).value == pytest.approx(9.0)


def test_bb_provisioner_fifo_no_backfill(bb_platform):
    env = bb_platform.env
    prov = BBProvisioner(bb_platform, granularity=3.2e12)
    order = []

    def holder(env):
        lease = yield prov.request(3 * 3.2e12, job="hold")
        yield env.timeout(10)
        lease.release()

    def big(env):
        yield env.timeout(1)
        lease = yield prov.request(2 * 3.2e12, job="big")
        order.append(("big", env.now))
        lease.release()

    def small(env):
        yield env.timeout(2)
        # One granule is free right now, but "big" is ahead in line.
        lease = yield prov.request(3.2e12, job="small")
        order.append(("small", env.now))
        lease.release()

    env.process(holder(env))
    env.process(big(env))
    env.process(small(env))
    env.run()
    assert order == [("big", 10.0), ("small", 10.0)]


def test_bb_request_larger_than_pool_raises(bb_platform):
    prov = BBProvisioner(bb_platform, granularity=3.2e12)
    with pytest.raises(InsufficientStorage):
        prov.request((prov.total_granules + 1) * 3.2e12, job="huge")
    with pytest.raises(ValueError):
        prov.request(0)


def test_bb_lease_context_manager_releases(bb_platform):
    env = bb_platform.env
    prov = BBProvisioner(bb_platform, granularity=3.2e12)

    def proc(env):
        event = prov.request(2 * 3.2e12)
        lease = yield event
        with lease:
            assert prov.free_granules == prov.total_granules - 2
        assert prov.free_granules == prov.total_granules
        lease.release()  # idempotent

    env.run(until=env.process(proc(env)))
    assert prov.free_granules == prov.total_granules


def test_bb_wait_without_observer_is_silent(bb_platform):
    """Zero-cost contract: no observer, no bookkeeping, same schedule."""
    env = bb_platform.env
    prov = BBProvisioner(bb_platform, granularity=3.2e12)
    done = []

    def first(env):
        lease = yield prov.request(4 * 3.2e12)
        yield env.timeout(5)
        lease.release()

    def second(env):
        yield env.timeout(1)
        lease = yield prov.request(3.2e12)
        done.append(env.now)
        lease.release()

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert done == [5.0]


# ----------------------------------------------------------------------
# Scenario-level: real runs produce classified waits
# ----------------------------------------------------------------------
def test_swarp_records_dependency_waits():
    obs = Observer()
    run_swarp(observer=obs)
    causes = {w.cause for w in obs.waits}
    assert WaitCause.DEPENDENCY in causes
    for wait in obs.waits:
        assert wait.end > wait.start
        assert isinstance(wait.cause, WaitCause)


def test_contended_genomes_records_cores_waits():
    obs = Observer()
    run_genomes(n_chromosomes=22, observer=obs)
    causes = {w.cause for w in obs.waits}
    assert WaitCause.CORES in causes
    total = obs.registry.counter("engine.wait.cores_seconds").value
    assert total == pytest.approx(
        sum(w.duration for w in obs.waits if w.cause is WaitCause.CORES)
    )


def test_wait_interval_serialization():
    interval = WaitInterval(
        task="t", cause=WaitCause.BB_CAPACITY, start=1.0, end=2.5,
        detail="bb-pool",
    )
    doc = interval.to_dict()
    assert doc == {
        "task": "t", "cause": "bb_capacity", "start": 1.0, "end": 2.5,
        "detail": "bb-pool",
    }
