"""Online invariant monitors: clean on stock runs, loud on seeded faults."""

import pytest

from repro import des
from repro.obs import (
    BBOccupancyMonitor,
    EventMonotonicityMonitor,
    InvariantViolation,
    LeaseBalanceMonitor,
    Observer,
    standard_monitors,
)
from repro.platform import Platform
from repro.platform.presets import cori_spec
from repro.scenarios import run_genomes, run_swarp
from repro.storage import BBMode
from repro.storage.provisioning import BBProvisioner

_GRANULE = 3.2e12  # DataWarp granularity used by the provisioner tests


def _violations(obs):
    counter = obs.registry.counters.get("invariants.violations")
    return counter.value if counter is not None else 0.0


def _checks(obs, name):
    return obs.registry.counter(f"invariants.{name}.checks").value


# ----------------------------------------------------------------------
# Stock scenarios are clean (and actually checked)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"bb_mode": BBMode.PRIVATE},
        {"bb_mode": BBMode.STRIPED},
        {"system": "summit"},
    ],
    ids=["cori-private", "cori-striped", "summit-onnode"],
)
def test_swarp_scenarios_report_zero_violations(kwargs):
    obs = Observer(monitors=True)
    run_swarp(n_pipelines=2, observer=obs, **kwargs)
    assert _violations(obs) == 0
    assert _checks(obs, "bb_occupancy") > 0
    assert _checks(obs, "link_capacity") > 0
    assert _checks(obs, "event_monotonicity") > 0


def test_full_genomes_reports_zero_violations():
    obs = Observer(monitors=True)
    run_genomes(observer=obs)  # the full 22-chromosome case study
    assert _violations(obs) == 0
    assert _checks(obs, "bb_occupancy") > 0
    assert _checks(obs, "link_capacity") > 0


def test_monitored_run_is_bit_identical():
    plain = run_swarp(n_pipelines=2).trace
    monitored = run_swarp(
        n_pipelines=2, observer=Observer(monitors=True)
    ).trace
    assert monitored.to_json() == plain.to_json()


# ----------------------------------------------------------------------
# Seeded fault: an oversubscribing rate allocator
# ----------------------------------------------------------------------
def _oversubscribe(flow_links, capacities, flow_caps=None):
    """Test-only allocator handing each flow 150% of its tightest link."""
    rates = []
    for links in flow_links:
        cap = min(capacities[link] for link in links) if links else 1.0
        rates.append(1.5 * cap)
    return rates


def test_oversubscribing_allocator_is_caught_with_event_chain():
    obs = Observer(monitors=True)
    with pytest.raises(InvariantViolation) as excinfo:
        run_swarp(n_pipelines=2, observer=obs,
                  network_allocator=_oversubscribe)
    violation = excinfo.value
    assert violation.invariant == "link_capacity"
    assert "over effective capacity" in violation.detail
    # The chain ends with the violation event itself, preceded by the
    # simulation events that led up to it.
    assert violation.chain
    assert violation.chain[-1]["event"] == "invariant_violation"
    assert violation.chain[-1]["fields"]["invariant"] == "link_capacity"
    assert _violations(obs) == 1
    # The formatted message carries the chain for the failure report.
    assert "recent event chain" in str(violation)


def test_monitors_run_even_with_restricted_metric_groups():
    """Metric-group gating must not blind the monitors."""
    obs = Observer(metrics=["compute"], monitors=True)
    with pytest.raises(InvariantViolation):
        run_swarp(n_pipelines=2, observer=obs,
                  network_allocator=_oversubscribe)


# ----------------------------------------------------------------------
# Direct monitor checks
# ----------------------------------------------------------------------
def _bound(monitor):
    obs = Observer(monitors=[monitor])
    obs.attach(des.Environment())
    return obs, monitor


def test_bb_occupancy_monitor_rejects_overflow():
    obs, _ = _bound(BBOccupancyMonitor())
    obs.on_storage_occupancy("bb", 999.0, 1000.0)  # fine
    with pytest.raises(InvariantViolation, match="bb_occupancy"):
        obs.on_storage_occupancy("bb", 1000.1, 1000.0)


def test_event_monotonicity_monitor_rejects_time_travel():
    obs, _ = _bound(EventMonotonicityMonitor())
    obs.on_event_processed(1.0)
    obs.on_event_processed(1.0)  # equal is fine
    with pytest.raises(InvariantViolation, match="event_monotonicity"):
        obs.on_event_processed(0.5)


def test_lease_balance_monitor_accepts_balanced_ledger():
    obs, monitor = _bound(LeaseBalanceMonitor())
    obs.on_bb_lease("granted", 2, 2, 4, "jobA")
    obs.on_bb_lease("queued", 4, 2, 4, "jobB")  # no ledger change
    obs.on_bb_lease("released", 2, 4, 4, "jobA")
    assert _checks(obs, "lease_balance") == 2.0


def test_lease_balance_monitor_rejects_double_release():
    obs, _ = _bound(LeaseBalanceMonitor())
    obs.on_bb_lease("granted", 1, 3, 4, "jobA")
    obs.on_bb_lease("released", 1, 4, 4, "jobA")
    with pytest.raises(InvariantViolation, match="more granules"):
        obs.on_bb_lease("released", 1, 4, 4, "jobA")


def test_lease_balance_monitor_rejects_imbalance():
    obs, _ = _bound(LeaseBalanceMonitor())
    with pytest.raises(InvariantViolation, match="imbalance"):
        obs.on_bb_lease("granted", 1, 4, 4, "jobA")  # free never carved


def test_provisioner_lease_events_balance_through_monitor():
    """The real BBProvisioner drives the lease monitor cleanly."""
    env = des.Environment()
    obs = Observer(monitors=True).attach(env)
    platform = Platform(env, cori_spec(n_compute=1, n_bb_nodes=2))
    prov = BBProvisioner(platform, granularity=_GRANULE)
    assert prov.total_granules == 4

    def first(env):
        lease = yield prov.request(4 * _GRANULE, job="jobA")
        yield env.timeout(10)
        lease.release()

    def second(env):
        yield env.timeout(1)
        lease = yield prov.request(_GRANULE, job="jobB")  # queues behind A
        lease.release()

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert _violations(obs) == 0
    assert _checks(obs, "lease_balance") >= 3.0
    lease_events = [
        e for e in obs.events if e["event"].startswith("bb_lease_")
    ]
    assert [e["event"] for e in lease_events] == [
        "bb_lease_granted",      # jobA takes the pool
        "bb_lease_queued",       # jobB must wait
        "bb_lease_released",     # jobA done
        "bb_lease_granted",      # jobB granted from the queue
        "bb_lease_released",     # jobB done
    ]


def test_standard_monitors_are_fresh_instances():
    first, second = standard_monitors(), standard_monitors()
    assert {type(m) for m in first} == {type(m) for m in second}
    assert not any(a is b for a in first for b in second)
