"""Live bus tests: ring bounds, deterministic flush sets, schema."""

import itertools
import json

import pytest

from repro.obs import (
    LIVE_SCHEMA,
    LiveBus,
    Observer,
    export_run,
    validate_live_dir,
    validate_obs_dir,
)
from repro.obs.log import iter_ndjson
from repro.scenarios import run_swarp


def fake_clock(start=100.0, step=1.0):
    counter = itertools.count()
    return lambda: start + step * next(counter)


# ----------------------------------------------------------------------
# Ring behavior
# ----------------------------------------------------------------------
def test_ring_overflow_drops_oldest_and_counts(tmp_path):
    bus = LiveBus(tmp_path, ring_size=4, flush_every=100, clock=fake_clock())
    for i in range(10):
        bus.push({"kind": "event", "i": i})
    assert bus.dropped == 6
    bus.flush()
    records = [r for r in iter_ndjson(tmp_path / "events.ndjson")
               if "schema" not in r]
    assert [r["i"] for r in records] == [6, 7, 8, 9]
    snapshots = [r for r in iter_ndjson(tmp_path / "snapshots.ndjson")
                 if "schema" not in r]
    assert snapshots[-1]["dropped"] == 6


def test_flush_interval_is_count_based(tmp_path):
    bus = LiveBus(tmp_path, flush_every=3, clock=fake_clock())
    bus.push({"kind": "event", "i": 0})
    bus.push({"kind": "event", "i": 1})
    assert not (tmp_path / "events.ndjson").exists()  # below the interval
    bus.push({"kind": "event", "i": 2})  # third push flushes
    records = [r for r in iter_ndjson(tmp_path / "events.ndjson")
               if "schema" not in r]
    assert [r["i"] for r in records] == [0, 1, 2]


def test_flushed_record_sets_are_deterministic(tmp_path):
    """Same pushes, different wall clocks: identical streams modulo ts."""
    streams = []
    for name, clock in (("a", fake_clock(0.0)), ("b", fake_clock(9e9, 7.0))):
        bus = LiveBus(tmp_path / name, flush_every=2, clock=clock)
        for i in range(7):
            bus.push({"kind": "event", "i": i})
        bus.close()
        records = list(iter_ndjson(tmp_path / name / "events.ndjson"))
        for record in records:
            record.pop("ts", None)
        streams.append(records)
    assert streams[0] == streams[1]


def test_validates_constructor_arguments(tmp_path):
    with pytest.raises(ValueError):
        LiveBus(tmp_path, ring_size=0)
    with pytest.raises(ValueError):
        LiveBus(tmp_path, flush_every=0)


def test_bus_rejects_second_observer(tmp_path):
    bus = LiveBus(tmp_path)
    Observer(bus=bus)
    with pytest.raises(ValueError, match="another observer"):
        Observer(bus=bus)


def test_push_after_close_is_ignored(tmp_path):
    bus = LiveBus(tmp_path, clock=fake_clock())
    bus.push({"kind": "event"})
    bus.close()
    bus.push({"kind": "event"})
    bus.close()  # idempotent
    heartbeat = json.loads((tmp_path / "heartbeat.json").read_text())
    assert heartbeat["closed"] is True


# ----------------------------------------------------------------------
# Snapshots and heartbeat
# ----------------------------------------------------------------------
def test_snapshots_are_incremental(tmp_path):
    bus = LiveBus(tmp_path, clock=fake_clock())
    obs = Observer(bus=bus)
    obs.registry.counter("demo.count").inc(3.0)
    bus.flush()
    bus.flush()  # nothing changed in between
    obs.registry.counter("demo.count").inc(1.0)
    bus.flush()
    snapshots = [r for r in iter_ndjson(tmp_path / "snapshots.ndjson")
                 if "schema" not in r]
    assert [s["counters"] for s in snapshots] == [
        {"demo.count": 3.0}, {}, {"demo.count": 4.0},
    ]
    assert [s["seq"] for s in snapshots] == [1, 2, 3]


def test_live_scenario_round_trips_validator(tmp_path):
    bus = LiveBus(tmp_path / "live", flush_every=16, clock=fake_clock())
    obs = Observer(bus=bus)
    run_swarp(n_pipelines=2, observer=obs)
    bus.close()
    assert validate_live_dir(tmp_path / "live") == []
    heartbeat = json.loads((tmp_path / "live" / "heartbeat.json").read_text())
    assert heartbeat["schema"] == LIVE_SCHEMA
    assert heartbeat["closed"] is True
    assert heartbeat["seq"] >= 1
    assert heartbeat["dropped"] == 0
    kinds = {
        r["kind"]
        for r in iter_ndjson(tmp_path / "live" / "events.ndjson")
        if "schema" not in r
    }
    assert {"event", "span_close"} <= kinds


def test_mid_flight_directory_validates(tmp_path):
    bus = LiveBus(tmp_path, flush_every=1, clock=fake_clock())
    Observer(bus=bus)
    bus.push({"kind": "event", "i": 0})
    # Producer mid-write: unterminated tail, heartbeat still open.
    with (tmp_path / "events.ndjson").open("a") as fh:
        fh.write('{"kind": "ev')
    assert validate_live_dir(tmp_path) == []
    heartbeat = json.loads((tmp_path / "heartbeat.json").read_text())
    assert heartbeat["closed"] is False


def test_validate_live_dir_catches_violations(tmp_path):
    assert any("missing" in e for e in validate_live_dir(tmp_path))

    header = json.dumps({"schema": LIVE_SCHEMA})
    (tmp_path / "snapshots.ndjson").write_text(
        header + "\n"
        + json.dumps({"seq": 2, "ts": 1.0, "counters": {}, "gauges": {},
                      "series": {}, "dropped": 0}) + "\n"
        + json.dumps({"seq": 2, "ts": 2.0, "counters": {}, "gauges": {},
                      "series": {}, "dropped": -1}) + "\n"
    )
    (tmp_path / "heartbeat.json").write_text(
        json.dumps({"schema": LIVE_SCHEMA, "ts": "soon", "seq": 2,
                    "closed": "maybe"})
    )
    errors = validate_live_dir(tmp_path)
    assert any("does not increase" in e for e in errors)
    assert any("dropped" in e for e in errors)
    assert any("numeric ts" in e for e in errors)
    assert any("closed flag" in e for e in errors)


# ----------------------------------------------------------------------
# Integration with export_run / the obs directory validator
# ----------------------------------------------------------------------
def test_export_run_closes_bus_and_dir_validates(tmp_path):
    out_dir = tmp_path / "telemetry"
    bus = LiveBus(out_dir / "live", flush_every=16, clock=fake_clock())
    obs = Observer(bus=bus)
    run_swarp(n_pipelines=1, observer=obs)
    out = export_run(obs, out_dir)
    heartbeat = json.loads((out / "live" / "heartbeat.json").read_text())
    assert heartbeat["closed"] is True
    # The whole directory — manifest, trace, CSVs, events, live/ — is valid.
    assert validate_obs_dir(out) == []
