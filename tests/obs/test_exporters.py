"""Exporter tests: Chrome trace shape, CSV layout, manifests, validation."""

import json

import pytest

from repro import des
from repro.obs import (
    MANIFEST_SCHEMA,
    Observer,
    build_manifest,
    chrome_trace,
    config_from_manifest,
    export_run,
    platform_digest,
    validate_chrome_trace,
    validate_manifest,
    validate_obs_dir,
    write_manifest,
    write_metric_csvs,
)
from repro.traces import TaskRecord


def observed_sample():
    """A small hand-driven observer with spans and metrics."""
    env = des.Environment()
    obs = Observer().attach(env)
    obs.on_storage_occupancy("bb", 100.0, 1000.0)
    env._now = 2.0
    obs.on_storage_occupancy("bb", 400.0, 1000.0)
    obs.on_storage_op("bb", "write", 300.0)
    env._now = 10.0
    obs.on_task_complete(
        TaskRecord(
            name="t", group="g", host="cn0", cores=4,
            start=0.0, read_start=0.0, read_end=2.0,
            compute_end=8.0, write_end=10.0, end=10.0,
        ),
        "compute",
    )
    return obs


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
def test_chrome_trace_shape():
    doc = chrome_trace(observed_sample())
    events = doc["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    assert {m["args"]["name"] for m in metadata} == {"repro simulation", "cn0"}
    assert {s["name"] for s in spans} == {"t", "t:read", "t:compute", "t:write"}
    assert all(s["ts"] >= 0 and s["dur"] >= 0 for s in spans)
    # Timestamps are microseconds of simulated time.
    task = next(s for s in spans if s["name"] == "t")
    assert task["ts"] == 0.0
    assert task["dur"] == 10.0e6
    assert counters  # every series renders as a counter track
    assert doc["otherData"]["counters"]["storage.bb.write_ops"] == 1


def test_chrome_trace_is_time_sorted_and_valid():
    doc = chrome_trace(observed_sample())
    timestamps = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
    assert timestamps == sorted(timestamps)
    assert validate_chrome_trace(doc) == []


def test_validate_chrome_trace_catches_bad_docs():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "x"}]}) != []
    unsorted = {
        "traceEvents": [
            {"ph": "C", "name": "a", "ts": 5.0},
            {"ph": "C", "name": "b", "ts": 1.0},
        ]
    }
    assert any("time-sorted" in e for e in validate_chrome_trace(unsorted))
    unbalanced = {"traceEvents": [{"ph": "B", "name": "x", "ts": 0.0, "pid": 1, "tid": 1}]}
    assert any("unclosed" in e for e in validate_chrome_trace(unbalanced))
    stray_end = {"traceEvents": [{"ph": "E", "name": "x", "ts": 0.0, "pid": 1, "tid": 1}]}
    assert any("no open B" in e for e in validate_chrome_trace(stray_end))


# ----------------------------------------------------------------------
# CSV export
# ----------------------------------------------------------------------
def test_metric_csvs_layout(tmp_path):
    paths = write_metric_csvs(observed_sample(), tmp_path)
    names = {p.name for p in paths}
    assert {"index.csv", "counters.csv", "gauges.csv"} <= names
    index = dict(
        line.split(",", 1)
        for line in (tmp_path / "index.csv").read_text().splitlines()[1:]
    )
    assert "storage.bb.occupancy_bytes" in index
    series = (tmp_path / index["storage.bb.occupancy_bytes"]).read_text().splitlines()
    assert series[0] == "time,value"
    assert [tuple(map(float, row.split(","))) for row in series[1:]] == [
        (0.0, 100.0),
        (2.0, 400.0),
    ]


# ----------------------------------------------------------------------
# Empty and partially-populated registries
# ----------------------------------------------------------------------
def test_chrome_trace_on_fresh_observer():
    """An observer that never saw a hook still exports a valid trace."""
    doc = chrome_trace(Observer())
    assert validate_chrome_trace(doc) == []
    assert [e["ph"] for e in doc["traceEvents"]] == ["M"]  # process name only
    assert doc["otherData"]["counters"] == {}


def test_metric_csvs_on_fresh_observer(tmp_path):
    paths = write_metric_csvs(Observer(), tmp_path)
    names = {p.name for p in paths}
    assert {"index.csv", "counters.csv", "gauges.csv"} <= names
    # Every file is header-only: no metrics means no rows, not no files.
    assert (tmp_path / "index.csv").read_text().splitlines()[1:] == []
    assert (tmp_path / "counters.csv").read_text().splitlines()[1:] == []


def test_export_run_on_fresh_observer(tmp_path):
    out = export_run(Observer(), tmp_path / "telemetry")
    assert validate_obs_dir(out) == []
    assert json.loads((out / "trace.json").read_text())["traceEvents"]
    # No events were emitted, so no event log is written (documented).
    assert not (out / "events.ndjson").exists()


def test_export_run_counter_only_registry(tmp_path):
    """A registry with one counter and no spans/gauges/series exports
    cleanly and the counter lands in every sink that carries counters."""
    obs = Observer()
    obs.registry.counter("demo.count").inc(5.0)
    out = export_run(obs, tmp_path / "telemetry")
    assert validate_obs_dir(out) == []
    assert chrome_trace(obs)["otherData"]["counters"] == {"demo.count": 5.0}
    rows = (out / "metrics" / "counters.csv").read_text().splitlines()
    assert rows == ["metric,value", "demo.count,5.0"]


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def test_manifest_roundtrips_config():
    from repro.simulator import SimulatorConfig
    from repro.storage import BBMode

    config = SimulatorConfig(
        bb_mode=BBMode.PRIVATE,
        input_fraction=0.5,
        intermediate_fraction=0.25,
        output_fraction=1.0,
        use_amdahl_alpha=True,
    )
    doc = build_manifest(config=config)
    assert validate_manifest(doc) == []
    assert config_from_manifest(doc) == config
    # The manifest survives a JSON hop unchanged.
    assert config_from_manifest(json.loads(json.dumps(doc))) == config


def test_manifest_digest_is_content_addressed():
    from repro.platform.presets import cori_spec

    a = cori_spec(n_compute=2, n_bb_nodes=1)
    b = cori_spec(n_compute=2, n_bb_nodes=1)
    c = cori_spec(n_compute=3, n_bb_nodes=1)
    assert platform_digest(a) == platform_digest(b)
    assert platform_digest(a) != platform_digest(c)


def test_manifest_is_deterministic(tmp_path):
    doc = build_manifest(observer=observed_sample(), extra={"note": "x"})
    first = write_manifest(doc, tmp_path / "a.json").read_text()
    second = write_manifest(doc, tmp_path / "b.json").read_text()
    assert first == second
    assert json.loads(first)["schema"] == MANIFEST_SCHEMA


def test_validate_manifest_catches_missing_fields():
    assert validate_manifest([]) != []
    assert any("schema" in e for e in validate_manifest({"schema": "wrong"}))
    doc = build_manifest()
    doc["config"] = {"bb_mode": "striped"}  # missing fractions
    assert any("input_fraction" in e for e in validate_manifest(doc))


# ----------------------------------------------------------------------
# Whole-directory export
# ----------------------------------------------------------------------
def test_export_run_produces_valid_directory(tmp_path):
    out = export_run(observed_sample(), tmp_path / "telemetry")
    assert validate_obs_dir(out) == []
    assert (out / "manifest.json").is_file()
    assert (out / "trace.json").is_file()
    assert (out / "metrics" / "index.csv").is_file()


def test_validate_obs_dir_reports_missing_pieces(tmp_path):
    errors = validate_obs_dir(tmp_path)
    assert "missing manifest.json" in errors
    assert "missing trace.json" in errors
    assert "missing metrics/ directory" in errors


def test_validate_cli_main(tmp_path, capsys):
    from repro.obs.validate import main

    out = export_run(observed_sample(), tmp_path / "telemetry")
    assert main([str(out)]) == 0
    assert "ok" in capsys.readouterr().out
    assert main([str(tmp_path / "nothing")]) == 1
    assert "missing" in capsys.readouterr().err


def test_validate_cli_names_the_failing_file(tmp_path, capsys):
    """Regression: a malformed manifest must exit non-zero and print the
    path of the file that failed, not just the directory."""
    from repro.obs.validate import main

    out = export_run(observed_sample(), tmp_path / "telemetry")
    (out / "manifest.json").write_text(json.dumps({"schema": "wrong/1"}))
    assert main([str(out)]) == 1
    err = capsys.readouterr().err
    assert str(out / "manifest.json") in err

    # A manifest whose platform block is not even an object must not
    # crash the validator — it is reported like any other violation.
    (out / "manifest.json").write_text(json.dumps(
        {"schema": MANIFEST_SCHEMA, "platform": "cori"}
    ))
    assert main([str(out)]) == 1
    assert str(out / "manifest.json") in capsys.readouterr().err


# ----------------------------------------------------------------------
# Profile export (repro.profile/1 inside a telemetry directory)
# ----------------------------------------------------------------------
def _profiled_run():
    from repro.profile import build_profile
    from repro.scenarios import run_swarp

    obs = Observer()
    result = run_swarp(observer=obs)
    return obs, build_profile(result.trace, observer=obs)


def test_export_run_with_profile_round_trips(tmp_path):
    from repro.obs import validate_profile_doc
    from repro.profile import read_profile
    from repro.simulator import SimulatorConfig

    obs, profile = _profiled_run()
    config = SimulatorConfig(input_fraction=1.0)
    out = export_run(
        obs, tmp_path / "telemetry",
        manifest=build_manifest(config=config, observer=obs),
        profile=profile,
    )
    # The directory validates as a whole, profile.json included.
    assert validate_obs_dir(out) == []
    doc = json.loads((out / "profile.json").read_text())
    assert validate_profile_doc(doc) == []
    # Loading back yields the same profile...
    loaded = read_profile(out / "profile.json")
    assert loaded.to_doc() == profile.to_doc()
    assert loaded.attribution == profile.attribution
    # ...and the manifest still round-trips its config alongside it.
    manifest = json.loads((out / "manifest.json").read_text())
    assert config_from_manifest(manifest) == config
    # The flamegraph rides along.
    assert (out / "profile.folded").is_file()


def test_export_run_profile_annotates_chrome_trace(tmp_path):
    obs, profile = _profiled_run()
    out = export_run(obs, tmp_path / "telemetry", profile=profile)
    doc = json.loads((out / "trace.json").read_text())
    lanes = [
        e for e in doc["traceEvents"] if e.get("cat") == "critical-path"
    ]
    assert lanes
    assert validate_chrome_trace(doc) == []


def test_validator_flags_corrupted_profile(tmp_path):
    from repro.obs import validate_profile_doc

    obs, profile = _profiled_run()
    out = export_run(obs, tmp_path / "telemetry", profile=profile)
    doc = json.loads((out / "profile.json").read_text())

    tampered = json.loads(json.dumps(doc))
    tampered["attribution"][next(iter(tampered["attribution"]))] += 10.0
    assert any("attribution" in e for e in validate_profile_doc(tampered))

    tampered = json.loads(json.dumps(doc))
    tampered["schema"] = "repro.profile/0"
    assert any("schema" in e for e in validate_profile_doc(tampered))

    tampered = json.loads(json.dumps(doc))
    if tampered["critical_path"]:
        tampered["critical_path"][0]["start"] -= 1.0
    assert validate_profile_doc(tampered) != []

    tampered = json.loads(json.dumps(doc))
    tampered["waits"] = [{"task": "t", "cause": "vibes", "start": 0, "end": 1}]
    assert any("cause" in e for e in validate_profile_doc(tampered))

    # A corrupted profile.json fails whole-directory validation too.
    (out / "profile.json").write_text(json.dumps({"schema": "repro.profile/0"}))
    assert any("profile" in e for e in validate_obs_dir(out))
    (out / "profile.json").write_text("{not json")
    assert any("invalid JSON" in e for e in validate_obs_dir(out))
