"""Tests for the I/O profiling module."""

import pytest

from repro.analysis import profile_trace, render_profile
from repro.scenarios import run_swarp
from repro.storage import BBMode
from repro.workflow import calibration as cal


@pytest.fixture(scope="module")
def profile():
    result = run_swarp(
        system="cori",
        bb_mode=BBMode.PRIVATE,
        input_fraction=1.0,
        intermediates_in_bb=True,
        n_pipelines=2,
        include_stage_in=False,
        emulated=True,
        seed=None,
    )
    return profile_trace(result.trace), result


def test_groups_present(profile):
    prof, result = profile
    assert set(prof.groups) == {"resample", "combine"}
    assert prof.groups["resample"].tasks == 2
    assert prof.groups["combine"].tasks == 2


def test_lambda_io_in_unit_range(profile):
    prof, result = profile
    for g in prof.groups.values():
        assert 0.0 < g.mean_lambda_io < 1.0


def test_service_byte_totals(profile):
    prof, result = profile
    # Everything except the coadd outputs flows through the BB:
    # 2 pipelines × (768 MiB reads + 768 MiB writes + 768 MiB combine reads).
    bb = next(s for name, s in prof.services.items() if name.startswith("bb"))
    expected = 2 * 3 * 768 * 1024**2
    assert bb.total_bytes == pytest.approx(expected, rel=1e-6)
    assert 0 < bb.read_fraction < 1


def test_total_bytes_is_sum_of_services(profile):
    prof, result = profile
    assert prof.total_bytes == pytest.approx(
        sum(s.total_bytes for s in prof.services.values())
    )


def test_bandwidths_below_physical_limits(profile):
    prof, result = profile
    for s in prof.services.values():
        for bw in (s.mean_read_bandwidth, s.mean_write_bandwidth):
            if bw is not None:
                assert 0 < bw < 6.5e9


def test_lookup_errors(profile):
    prof, result = profile
    with pytest.raises(KeyError):
        prof.service("ghost")
    with pytest.raises(KeyError):
        prof.group("ghost")


def test_render_profile_mentions_everything(profile):
    prof, result = profile
    text = render_profile(prof)
    assert "resample" in text and "combine" in text
    assert "lambda_io" in text
    assert "total bytes moved" in text


def test_profile_feeds_calibration():
    """The profile of an emulated PFS baseline is exactly the λ_io input
    the paper's Eq. (4) calibration needs — the loop closes."""
    result = run_swarp(
        system="cori",
        input_fraction=0.0,
        intermediates_in_bb=False,
        include_stage_in=False,
        emulated=True,
        seed=None,
    )
    prof = profile_trace(result.trace)
    from repro.experiments.common import calibrate_swarp

    calibration = calibrate_swarp("cori")
    assert prof.groups["resample"].mean_lambda_io == pytest.approx(
        calibration.lambda_resample, rel=1e-9
    )
