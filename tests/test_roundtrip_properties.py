"""Property-based round-trip tests across serialization boundaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import platform_from_json, platform_to_json
from repro.platform.spec import DiskSpec, HostSpec, LinkSpec, PlatformSpec, RouteSpec
from repro.traces import ExecutionTrace, IOOperation, TaskRecord
from repro.workflow.synthetic import make_random_dag
from repro.workflow.wfformat import workflow_from_wfformat, workflow_to_wfformat


# ----------------------------------------------------------------------
# Random platform specs
# ----------------------------------------------------------------------
@st.composite
def platform_specs(draw):
    n_hosts = draw(st.integers(min_value=1, max_value=6))
    hosts = []
    for i in range(n_hosts):
        disks = tuple(
            DiskSpec(
                name=f"d{k}",
                read_bandwidth=draw(st.floats(min_value=1e6, max_value=1e10)),
                write_bandwidth=draw(st.floats(min_value=1e6, max_value=1e10)),
                capacity=draw(st.floats(min_value=1e9, max_value=1e15)),
            )
            for k in range(draw(st.integers(min_value=0, max_value=2)))
        )
        hosts.append(
            HostSpec(
                name=f"h{i}",
                cores=draw(st.integers(min_value=1, max_value=128)),
                core_speed=draw(st.floats(min_value=1e9, max_value=1e11)),
                ram=draw(
                    st.one_of(
                        st.just(float("inf")),
                        st.floats(min_value=1e9, max_value=1e12),
                    )
                ),
                disks=disks,
            )
        )
    n_links = draw(st.integers(min_value=0, max_value=4))
    links = tuple(
        LinkSpec(
            name=f"l{i}",
            bandwidth=draw(st.floats(min_value=1e6, max_value=1e11)),
            latency=draw(st.floats(min_value=0, max_value=1e-3)),
            concurrency_penalty=draw(st.floats(min_value=0, max_value=0.5)),
        )
        for i in range(n_links)
    )
    routes = []
    if n_hosts >= 2 and n_links >= 1:
        for _ in range(draw(st.integers(min_value=0, max_value=4))):
            a, b = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_hosts - 1),
                    min_size=2,
                    max_size=2,
                    unique=True,
                )
            )
            pair = (f"h{a}", f"h{b}")
            if any((r.src, r.dst) == pair for r in routes):
                continue
            routes.append(
                RouteSpec(
                    pair[0],
                    pair[1],
                    [f"l{draw(st.integers(min_value=0, max_value=n_links - 1))}"],
                )
            )
    return PlatformSpec(
        name=draw(st.text(min_size=1, max_size=12)),
        hosts=tuple(hosts),
        links=links,
        routes=tuple(routes),
    )


@given(platform_specs())
@settings(max_examples=50, deadline=None)
def test_platform_json_roundtrip_any_spec(spec):
    assert platform_from_json(platform_to_json(spec)) == spec


# ----------------------------------------------------------------------
# Random workflows through WfCommons JSON
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=0, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_wfformat_roundtrip_random_dags(n, seed):
    original = make_random_dag(n, seed=seed)
    loaded = workflow_from_wfformat(workflow_to_wfformat(original))
    assert set(loaded.tasks) == set(original.tasks)
    assert sorted(loaded.graph.edges) == sorted(original.graph.edges)
    for name, task in original.tasks.items():
        other = loaded.task(name)
        # Flops go through seconds with float rounding; sizes are
        # truncated to integer bytes by the schema.
        assert other.flops == pytest.approx(task.flops, rel=1e-9)
        assert other.cores == task.cores
        assert {f.name for f in other.inputs} == {f.name for f in task.inputs}
        assert {f.name for f in other.outputs} == {f.name for f in task.outputs}


# ----------------------------------------------------------------------
# Random execution traces through to_json / from_json
# ----------------------------------------------------------------------
_times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-."),
    min_size=1,
    max_size=12,
)


@st.composite
def execution_traces(draw):
    trace = ExecutionTrace(draw(_names))
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        trace.log(draw(_times), draw(_names), draw(_names), draw(_names))
    names = draw(st.lists(_names, max_size=6, unique=True))
    for name in names:
        # Monotone phase boundaries, as the engine records them.
        a, b, c, d = sorted(draw(st.lists(_times, min_size=4, max_size=4)))
        trace.add_record(
            TaskRecord(
                name=name,
                group=draw(_names),
                host=draw(_names),
                cores=draw(st.integers(min_value=1, max_value=64)),
                start=a,
                read_start=a,
                read_end=b,
                compute_end=c,
                write_end=d,
                end=d,
            )
        )
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        begin, end = sorted([draw(_times), draw(_times)])
        trace.log_io(
            IOOperation(
                task=draw(_names),
                file=draw(_names),
                service=draw(_names),
                kind=draw(st.sampled_from(["read", "write", "stage"])),
                size=draw(st.floats(min_value=0.0, max_value=1e12)),
                start=begin,
                end=end,
            )
        )
    return trace


@given(execution_traces())
@settings(max_examples=50, deadline=None)
def test_trace_json_roundtrip_any_trace(trace):
    loaded = ExecutionTrace.from_json(trace.to_json())
    assert loaded.workflow_name == trace.workflow_name
    assert loaded.events == trace.events
    assert loaded.io_operations == trace.io_operations
    assert set(loaded.records) == set(trace.records)
    assert sorted(loaded.records.values(), key=lambda r: (r.start, r.name)) == sorted(
        trace.records.values(), key=lambda r: (r.start, r.name)
    )
    assert loaded.makespan == trace.makespan
    # A second hop is exactly stable.
    assert ExecutionTrace.from_json(loaded.to_json()).to_json() == loaded.to_json()
