"""Property-based round-trip tests across serialization boundaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import platform_from_json, platform_to_json
from repro.platform.spec import DiskSpec, HostSpec, LinkSpec, PlatformSpec, RouteSpec
from repro.workflow.synthetic import make_random_dag
from repro.workflow.wfformat import workflow_from_wfformat, workflow_to_wfformat


# ----------------------------------------------------------------------
# Random platform specs
# ----------------------------------------------------------------------
@st.composite
def platform_specs(draw):
    n_hosts = draw(st.integers(min_value=1, max_value=6))
    hosts = []
    for i in range(n_hosts):
        disks = tuple(
            DiskSpec(
                name=f"d{k}",
                read_bandwidth=draw(st.floats(min_value=1e6, max_value=1e10)),
                write_bandwidth=draw(st.floats(min_value=1e6, max_value=1e10)),
                capacity=draw(st.floats(min_value=1e9, max_value=1e15)),
            )
            for k in range(draw(st.integers(min_value=0, max_value=2)))
        )
        hosts.append(
            HostSpec(
                name=f"h{i}",
                cores=draw(st.integers(min_value=1, max_value=128)),
                core_speed=draw(st.floats(min_value=1e9, max_value=1e11)),
                ram=draw(
                    st.one_of(
                        st.just(float("inf")),
                        st.floats(min_value=1e9, max_value=1e12),
                    )
                ),
                disks=disks,
            )
        )
    n_links = draw(st.integers(min_value=0, max_value=4))
    links = tuple(
        LinkSpec(
            name=f"l{i}",
            bandwidth=draw(st.floats(min_value=1e6, max_value=1e11)),
            latency=draw(st.floats(min_value=0, max_value=1e-3)),
            concurrency_penalty=draw(st.floats(min_value=0, max_value=0.5)),
        )
        for i in range(n_links)
    )
    routes = []
    if n_hosts >= 2 and n_links >= 1:
        for _ in range(draw(st.integers(min_value=0, max_value=4))):
            a, b = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_hosts - 1),
                    min_size=2,
                    max_size=2,
                    unique=True,
                )
            )
            pair = (f"h{a}", f"h{b}")
            if any((r.src, r.dst) == pair for r in routes):
                continue
            routes.append(
                RouteSpec(
                    pair[0],
                    pair[1],
                    [f"l{draw(st.integers(min_value=0, max_value=n_links - 1))}"],
                )
            )
    return PlatformSpec(
        name=draw(st.text(min_size=1, max_size=12)),
        hosts=tuple(hosts),
        links=links,
        routes=tuple(routes),
    )


@given(platform_specs())
@settings(max_examples=50, deadline=None)
def test_platform_json_roundtrip_any_spec(spec):
    assert platform_from_json(platform_to_json(spec)) == spec


# ----------------------------------------------------------------------
# Random workflows through WfCommons JSON
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=0, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_wfformat_roundtrip_random_dags(n, seed):
    original = make_random_dag(n, seed=seed)
    loaded = workflow_from_wfformat(workflow_to_wfformat(original))
    assert set(loaded.tasks) == set(original.tasks)
    assert sorted(loaded.graph.edges) == sorted(original.graph.edges)
    for name, task in original.tasks.items():
        other = loaded.task(name)
        # Flops go through seconds with float rounding; sizes are
        # truncated to integer bytes by the schema.
        assert other.flops == pytest.approx(task.flops, rel=1e-9)
        assert other.cores == task.cores
        assert {f.name for f in other.inputs} == {f.name for f in task.inputs}
        assert {f.name for f in other.outputs} == {f.name for f in task.outputs}
