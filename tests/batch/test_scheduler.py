"""Tests for the batch scheduler (FCFS + EASY backfilling)."""

import pytest

from repro import des
from repro.batch import BatchScheduler, JobRequest, JobState

NODES = [f"cn{i}" for i in range(4)]


def make_body(env, duration, log=None, name=None):
    def body(allocation):
        if log is not None:
            log.append((name or allocation.job.name, "start", env.now))
        yield env.timeout(duration)
        if log is not None:
            log.append((name or allocation.job.name, "end", env.now))

    return body


def test_job_request_validation():
    with pytest.raises(ValueError):
        JobRequest("", 1, 10)
    with pytest.raises(ValueError):
        JobRequest("j", 0, 10)
    with pytest.raises(ValueError):
        JobRequest("j", 1, 0)


def test_scheduler_requires_nodes():
    env = des.Environment()
    with pytest.raises(ValueError):
        BatchScheduler(env, [])


def test_oversized_job_rejected_at_submit():
    env = des.Environment()
    sched = BatchScheduler(env, NODES)
    with pytest.raises(ValueError, match="requests 5 nodes"):
        sched.submit(JobRequest("big", 5, 10), make_body(env, 1))


def test_job_runs_and_completes():
    env = des.Environment()
    sched = BatchScheduler(env, NODES)
    done = sched.submit(JobRequest("j", 2, 100), make_body(env, 10))
    result = env.run(until=done)
    assert result.state == JobState.COMPLETED
    assert result.start_time == 0
    assert result.end_time == 10
    assert len(result.nodes) == 2
    assert sched.free_nodes == 4


def test_fcfs_ordering():
    env = des.Environment()
    sched = BatchScheduler(env, NODES)
    log = []
    sched.submit(JobRequest("first", 4, 100), make_body(env, 10, log))
    sched.submit(JobRequest("second", 4, 100), make_body(env, 10, log))
    env.run()
    assert log == [
        ("first", "start", 0),
        ("first", "end", 10),
        ("second", "start", 10),
        ("second", "end", 20),
    ]


def test_parallel_jobs_share_machine():
    env = des.Environment()
    sched = BatchScheduler(env, NODES)
    log = []
    sched.submit(JobRequest("a", 2, 100), make_body(env, 10, log))
    sched.submit(JobRequest("b", 2, 100), make_body(env, 10, log))
    env.run()
    starts = {entry[0]: entry[2] for entry in log if entry[1] == "start"}
    assert starts == {"a": 0, "b": 0}


def test_walltime_kills_job():
    env = des.Environment()
    sched = BatchScheduler(env, NODES)
    done = sched.submit(JobRequest("slow", 1, walltime=5), make_body(env, 50))
    result = env.run(until=done)
    assert result.state == JobState.TIMEOUT
    assert result.end_time == 5
    assert sched.free_nodes == 4  # nodes reclaimed


def test_body_can_catch_walltime_interrupt():
    env = des.Environment()
    sched = BatchScheduler(env, NODES)
    cleaned = []

    def body(allocation):
        try:
            yield env.timeout(50)
        except des.Interrupt:
            cleaned.append(env.now)  # graceful shutdown work

    done = sched.submit(JobRequest("graceful", 1, walltime=5), body)
    result = env.run(until=done)
    assert cleaned == [5]
    # Finished exactly at the deadline after cleanup.
    assert result.end_time == 5


def test_easy_backfill_small_job_jumps_queue():
    """head needs the whole machine; a small short job backfills into
    the idle nodes without delaying the head."""
    env = des.Environment()
    sched = BatchScheduler(env, NODES)
    log = []
    # Runner holds 2 nodes until t=20.
    sched.submit(JobRequest("runner", 2, walltime=20), make_body(env, 20, log))
    # Head needs 4 nodes → blocked until t=20 (reservation).
    sched.submit(JobRequest("head", 4, walltime=50), make_body(env, 10, log))
    # Small job: 2 nodes, walltime 10 ≤ reservation (20) → backfills now.
    sched.submit(JobRequest("small", 2, walltime=10), make_body(env, 10, log))
    env.run()
    starts = {e[0]: e[2] for e in log if e[1] == "start"}
    assert starts["runner"] == 0
    assert starts["small"] == 0       # backfilled
    assert starts["head"] == 20       # not delayed by the backfill


def test_backfill_never_delays_head():
    """A long backfill candidate that WOULD delay the head must wait."""
    env = des.Environment()
    sched = BatchScheduler(env, NODES)
    log = []
    sched.submit(JobRequest("runner", 2, walltime=20), make_body(env, 20, log))
    sched.submit(JobRequest("head", 4, walltime=50), make_body(env, 10, log))
    # 2 nodes but walltime 30 > reservation at t=20 → must not backfill.
    sched.submit(JobRequest("long", 2, walltime=30), make_body(env, 30, log))
    env.run()
    starts = {e[0]: e[2] for e in log if e[1] == "start"}
    assert starts["head"] == 20
    assert starts["long"] >= 30  # after the head started


def test_queue_and_running_introspection():
    env = des.Environment()
    sched = BatchScheduler(env, NODES)
    sched.submit(JobRequest("a", 4, 100), make_body(env, 10))
    sched.submit(JobRequest("b", 4, 100), make_body(env, 10))
    assert sched.running_jobs == ["a"]
    assert sched.queued_jobs == ["b"]
    env.run()
    assert sched.running_jobs == []
    assert len(sched.results) == 2


def test_body_exception_propagates():
    env = des.Environment()
    sched = BatchScheduler(env, NODES)

    def bad(allocation):
        yield env.timeout(1)
        raise RuntimeError("job crashed")

    sched.submit(JobRequest("bad", 1, 100), bad)
    with pytest.raises(RuntimeError, match="job crashed"):
        env.run()
    assert sched.free_nodes == 4  # nodes still reclaimed


def test_workflow_inside_batch_job():
    """End-to-end: a job body runs a workflow engine on its nodes."""
    from repro.compute import ComputeService
    from repro.platform import Platform
    from repro.platform.presets import TABLE_I, cori_spec
    from repro.storage import ParallelFileSystem
    from repro.wms import WorkflowEngine
    from repro.workflow import Task, Workflow

    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=4))
    sched = BatchScheduler(env, [f"cn{i}" for i in range(4)])
    makespans = []

    def body(allocation):
        engine = WorkflowEngine(
            plat,
            Workflow(
                "inner",
                [
                    Task(
                        f"t{i}",
                        flops=TABLE_I["cori"]["core_speed"],
                        cores=32,
                    )
                    for i in range(len(allocation.nodes))
                ],
            ),
            ComputeService(plat, list(allocation.nodes)),
            ParallelFileSystem(plat),
        )
        # start() composes with the running simulation (run() would try
        # to drive the event loop, which is already running).
        yield engine.start()
        makespans.append(engine.trace.makespan)

    done = sched.submit(JobRequest("wf", 2, walltime=100), body)
    result = env.run(until=done)
    assert result.state == JobState.COMPLETED
    assert makespans and makespans[0] > 0
