"""Property-based tests for batch scheduling invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import des
from repro.batch import BatchScheduler, JobRequest, JobState

N_NODES = 8


@st.composite
def job_mixes(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=12))
    jobs = []
    for i in range(n_jobs):
        jobs.append(
            (
                draw(st.integers(min_value=1, max_value=N_NODES)),   # nodes
                draw(st.floats(min_value=0.5, max_value=20.0)),      # runtime
                draw(st.floats(min_value=0.1, max_value=30.0)),      # walltime
            )
        )
    return jobs


def run_mix(jobs):
    env = des.Environment()
    nodes = [f"n{i}" for i in range(N_NODES)]
    sched = BatchScheduler(env, nodes)
    usage = []

    def body_factory(runtime):
        def body(allocation):
            usage.append((env.now, len(allocation.nodes), +1))
            try:
                yield env.timeout(runtime)
            finally:
                usage.append((env.now, len(allocation.nodes), -1))

        return body

    for i, (n, runtime, walltime) in enumerate(jobs):
        sched.submit(JobRequest(f"j{i}", n, walltime), body_factory(runtime))
    env.run()
    return sched, usage


@given(job_mixes())
@settings(max_examples=40, deadline=None)
def test_every_job_terminates(jobs):
    sched, _ = run_mix(jobs)
    assert len(sched.results) == len(jobs)
    assert sched.queued_jobs == []
    assert sched.running_jobs == []
    assert sched.free_nodes == N_NODES


@given(job_mixes())
@settings(max_examples=40, deadline=None)
def test_nodes_never_oversubscribed(jobs):
    _, usage = run_mix(jobs)
    in_use = 0
    peak = 0
    # At equal timestamps the scheduler releases nodes before granting
    # them to the next job, so count releases (delta = -1) first.
    for _, n, delta in sorted(usage, key=lambda u: (u[0], u[2])):
        in_use += delta * n
        peak = max(peak, in_use)
    assert peak <= N_NODES


@given(job_mixes())
@settings(max_examples=40, deadline=None)
def test_walltime_respected(jobs):
    sched, _ = run_mix(jobs)
    for result in sched.results:
        assert result.runtime <= result.job.walltime + 1e-9
        if result.state == JobState.TIMEOUT:
            assert result.runtime >= result.job.walltime - 1e-9


@given(job_mixes())
@settings(max_examples=40, deadline=None)
def test_short_enough_jobs_complete(jobs):
    sched, _ = run_mix(jobs)
    by_name = {r.job.name: r for r in sched.results}
    for i, (n, runtime, walltime) in enumerate(jobs):
        if runtime < walltime:
            assert by_name[f"j{i}"].state == JobState.COMPLETED
