"""Tests for the core allocator and compute service."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import des
from repro.compute import AllocationError, ComputeService, CoreAllocator
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.workflow import File, Task


# ----------------------------------------------------------------------
# CoreAllocator
# ----------------------------------------------------------------------
def test_allocator_grants_immediately_when_free():
    env = des.Environment()
    alloc = CoreAllocator(env, 32)
    granted = []

    def proc(env):
        a = yield alloc.request(8)
        granted.append((env.now, alloc.free_cores))
        a.release()

    env.run(until=env.process(proc(env)))
    assert granted == [(0.0, 24)]
    assert alloc.free_cores == 32


def test_allocator_blocks_until_release():
    env = des.Environment()
    alloc = CoreAllocator(env, 4)
    log = []

    def holder(env):
        a = yield alloc.request(4)
        yield env.timeout(5)
        a.release()

    def waiter(env):
        a = yield alloc.request(2)
        log.append(env.now)
        a.release()

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert log == [5]


def test_allocator_fifo_no_backfill():
    """A small request behind a large one must wait (strict FIFO)."""
    env = des.Environment()
    alloc = CoreAllocator(env, 4)
    order = []

    def holder(env):
        a = yield alloc.request(3)
        yield env.timeout(10)
        a.release()

    def big(env):
        yield env.timeout(1)
        a = yield alloc.request(4)
        order.append(("big", env.now))
        a.release()

    def small(env):
        yield env.timeout(2)
        a = yield alloc.request(1)  # would fit now, but big is ahead
        order.append(("small", env.now))
        a.release()

    env.process(holder(env))
    env.process(big(env))
    env.process(small(env))
    env.run()
    assert order == [("big", 10), ("small", 10)]


def test_allocator_impossible_request_fails_fast():
    env = des.Environment()
    alloc = CoreAllocator(env, 8)
    with pytest.raises(AllocationError):
        alloc.request(9)


def test_allocator_validation():
    env = des.Environment()
    with pytest.raises(ValueError):
        CoreAllocator(env, 0)
    alloc = CoreAllocator(env, 4)
    with pytest.raises(ValueError):
        alloc.request(0)


def test_allocation_release_idempotent():
    env = des.Environment()
    alloc = CoreAllocator(env, 4)

    def proc(env):
        a = yield alloc.request(2)
        a.release()
        a.release()  # double release must not free extra cores

    env.run(until=env.process(proc(env)))
    assert alloc.free_cores == 4


def test_allocation_context_manager():
    env = des.Environment()
    alloc = CoreAllocator(env, 4)

    def proc(env):
        allocation = yield alloc.request(3)
        with allocation:
            assert alloc.free_cores == 1
            yield env.timeout(1)

    env.run(until=env.process(proc(env)))
    assert alloc.free_cores == 4


@given(
    st.integers(min_value=1, max_value=16),
    st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=20),
)
@settings(max_examples=40)
def test_allocator_never_oversubscribes(total, requests):
    env = des.Environment()
    alloc = CoreAllocator(env, total)
    peak = [0]

    def user(env, n):
        a = yield alloc.request(n)
        peak[0] = max(peak[0], alloc.used_cores)
        yield env.timeout(1)
        a.release()

    for n in requests:
        if n <= total:
            env.process(user(env, n))
    env.run()
    assert peak[0] <= total
    assert alloc.free_cores == total


# ----------------------------------------------------------------------
# ComputeService
# ----------------------------------------------------------------------
@pytest.fixture
def service():
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=2))
    return env, ComputeService(plat, ["cn0", "cn1"])


def test_compute_time_scales_with_cores(service):
    env, svc = service
    speed = TABLE_I["cori"]["core_speed"]
    task = Task("t", flops=32 * speed, cores=32)
    assert svc.compute_time(task, "cn0", cores=1) == pytest.approx(32.0)
    assert svc.compute_time(task, "cn0", cores=32) == pytest.approx(1.0)


def test_compute_time_uses_task_cores_by_default(service):
    env, svc = service
    speed = TABLE_I["cori"]["core_speed"]
    task = Task("t", flops=8 * speed, cores=8)
    assert svc.compute_time(task, "cn0") == pytest.approx(1.0)


def test_compute_time_amdahl_alpha_honored():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    svc = ComputeService(plat, ["cn0"], use_amdahl_alpha=True)
    speed = TABLE_I["cori"]["core_speed"]
    task = Task("t", flops=32 * speed, cores=32, alpha=1.0)
    # Fully serial: 32 s regardless of core count.
    assert svc.compute_time(task, "cn0") == pytest.approx(32.0)


def test_execute_runs_for_amdahl_duration(service):
    env, svc = service
    speed = TABLE_I["cori"]["core_speed"]
    task = Task("t", flops=4 * speed, cores=4)
    env.run(until=svc.execute(task, "cn0"))
    assert env.now == pytest.approx(1.0)


def test_execute_serializes_on_core_pressure(service):
    """Two 32-core tasks on a 32-core host must run back to back."""
    env, svc = service
    speed = TABLE_I["cori"]["core_speed"]
    t1 = Task("t1", flops=32 * speed, cores=32)
    t2 = Task("t2", flops=32 * speed, cores=32)
    e1 = svc.execute(t1, "cn0")
    e2 = svc.execute(t2, "cn0")
    env.run(until=env.all_of([e1, e2]))
    assert env.now == pytest.approx(2.0)


def test_hosts_run_independently(service):
    env, svc = service
    speed = TABLE_I["cori"]["core_speed"]
    t1 = Task("t1", flops=32 * speed, cores=32)
    t2 = Task("t2", flops=32 * speed, cores=32)
    e1 = svc.execute(t1, "cn0")
    e2 = svc.execute(t2, "cn1")
    env.run(until=env.all_of([e1, e2]))
    assert env.now == pytest.approx(1.0)


def test_oversized_task_clamped_to_host(service):
    """A 64-core request on a 32-core host runs on 32 cores."""
    env, svc = service
    speed = TABLE_I["cori"]["core_speed"]
    task = Task("t", flops=32 * speed, cores=64)
    env.run(until=svc.execute(task, "cn0"))
    assert env.now == pytest.approx(1.0)


def test_service_requires_hosts():
    env = des.Environment()
    plat = Platform(env, cori_spec())
    with pytest.raises(ValueError):
        ComputeService(plat, [])


def test_unknown_host_rejected(service):
    env, svc = service
    with pytest.raises(KeyError):
        svc.allocator("ghost")
