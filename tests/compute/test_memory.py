"""Tests for RAM accounting in the compute service and engine."""

import pytest

from repro import des
from repro.compute import AllocationError, ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I
from repro.platform.spec import DiskSpec, HostSpec, LinkSpec, PlatformSpec, RouteSpec
from repro.storage import ParallelFileSystem
from repro.wms import WorkflowEngine
from repro.workflow import Task, Workflow

SPEED = TABLE_I["cori"]["core_speed"]
RAM = 64e9  # 64 GB node


def platform_with_ram(env):
    spec = PlatformSpec(
        name="ram-test",
        hosts=(
            HostSpec(name="cn0", cores=32, core_speed=SPEED, ram=RAM),
            HostSpec(
                name="pfs",
                cores=1,
                core_speed=SPEED,
                disks=(DiskSpec("lustre", read_bandwidth=1e8, write_bandwidth=1e8),),
            ),
        ),
        links=(LinkSpec("up", bandwidth=1e9),),
        routes=(RouteSpec("cn0", "pfs", ["up"]),),
    )
    return Platform(env, spec)


def test_memory_pool_created_for_finite_ram():
    env = des.Environment()
    svc = ComputeService(platform_with_ram(env), ["cn0"])
    assert "cn0" in svc.memory
    assert svc.memory["cn0"].level == RAM


def test_no_pool_for_infinite_ram():
    from repro.platform.presets import cori_spec

    env = des.Environment()
    svc = ComputeService(Platform(env, cori_spec()), ["cn0"])
    assert svc.memory == {}
    assert svc.acquire_memory("cn0", 1e9) is None


def test_acquire_zero_memory_is_noop():
    env = des.Environment()
    svc = ComputeService(platform_with_ram(env), ["cn0"])
    assert svc.acquire_memory("cn0", 0) is None


def test_oversized_memory_request_fails_fast():
    env = des.Environment()
    svc = ComputeService(platform_with_ram(env), ["cn0"])
    with pytest.raises(AllocationError):
        svc.acquire_memory("cn0", RAM + 1)


def test_memory_blocks_and_releases():
    env = des.Environment()
    svc = ComputeService(platform_with_ram(env), ["cn0"])
    timeline = []

    def holder(env):
        yield svc.acquire_memory("cn0", 48e9)
        timeline.append(("holder", env.now))
        yield env.timeout(5)
        svc.release_memory("cn0", 48e9)

    def waiter(env):
        yield env.timeout(1)
        yield svc.acquire_memory("cn0", 32e9)  # blocks until t=5
        timeline.append(("waiter", env.now))
        svc.release_memory("cn0", 32e9)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert timeline == [("holder", 0), ("waiter", 5)]
    assert svc.memory["cn0"].level == RAM


def test_engine_serializes_memory_hungry_tasks():
    """Two 40 GB tasks on a 64 GB node run back-to-back even though
    cores are plentiful."""
    env = des.Environment()
    plat = platform_with_ram(env)
    tasks = [
        Task(f"t{i}", flops=SPEED, cores=1, memory=40e9) for i in range(2)
    ]
    engine = WorkflowEngine(
        plat,
        Workflow("hungry", tasks),
        ComputeService(plat, ["cn0"]),
        ParallelFileSystem(plat),
        host_assignment=lambda t: "cn0",
    )
    trace = engine.run()
    assert trace.makespan == pytest.approx(2.0, rel=1e-6)


def test_engine_releases_memory_after_task():
    env = des.Environment()
    plat = platform_with_ram(env)
    svc = ComputeService(plat, ["cn0"])
    engine = WorkflowEngine(
        plat,
        Workflow("one", [Task("t", flops=SPEED, cores=1, memory=10e9)]),
        svc,
        ParallelFileSystem(plat),
        host_assignment=lambda t: "cn0",
    )
    engine.run()
    assert svc.memory["cn0"].level == RAM


def test_task_memory_validation():
    with pytest.raises(ValueError):
        Task("t", flops=1, memory=-1)
