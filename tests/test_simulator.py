"""Tests for the WRENCH-style Simulator facade and its CLI."""

import json

import pytest

from repro.platform import platform_to_json
from repro.platform.presets import cori_spec, summit_spec
from repro.simulator import Simulator, SimulatorConfig, main
from repro.storage import BBMode
from repro.workflow.swarp import make_swarp
from repro.workflow.wfformat import workflow_to_wfformat


@pytest.fixture
def files(tmp_path):
    platform_path = tmp_path / "platform.json"
    workflow_path = tmp_path / "workflow.json"
    platform_to_json(cori_spec(n_compute=1, n_bb_nodes=2), platform_path)
    workflow_to_wfformat(make_swarp(n_pipelines=2), path=workflow_path)
    return platform_path, workflow_path


def test_simulator_runs_from_files(files):
    platform_path, workflow_path = files
    trace = Simulator(platform_path, workflow_path).run()
    assert trace.makespan > 0
    assert len(trace.records) == 5


def test_simulator_accepts_objects():
    trace = Simulator(cori_spec(), make_swarp()).run()
    assert trace.makespan > 0


def test_simulator_modes_differ():
    """Striped across 2 BB nodes and private to one node are different
    executions (flows touch different disk channels)."""
    spec = cori_spec(n_compute=1, n_bb_nodes=2)
    wf = make_swarp(n_pipelines=1)
    private = Simulator(
        spec, wf, SimulatorConfig(bb_mode=BBMode.PRIVATE)
    ).run()
    striped = Simulator(
        spec, wf, SimulatorConfig(bb_mode=BBMode.STRIPED)
    ).run()
    assert private.makespan > 0 and striped.makespan > 0


def test_simulator_on_summit_uses_local_bbs():
    trace = Simulator(summit_spec(n_compute=1), make_swarp()).run()
    assert trace.makespan > 0


def test_simulator_fraction_zero_keeps_pfs_only():
    config = SimulatorConfig(
        input_fraction=0.0, intermediate_fraction=0.0, output_fraction=0.0
    )
    bb = Simulator(cori_spec(), make_swarp(), SimulatorConfig()).run()
    pfs_only = Simulator(cori_spec(), make_swarp(), config).run()
    # Intermediates over the 100 MB/s PFS are much slower than the BB.
    assert pfs_only.makespan > bb.makespan


def test_simulator_requires_compute_hosts():
    from repro.platform.spec import DiskSpec, HostSpec, PlatformSpec

    spec = PlatformSpec(
        name="nocn",
        hosts=(
            HostSpec(
                name="pfs",
                cores=1,
                core_speed=1e9,
                disks=(DiskSpec("lustre", read_bandwidth=1e8, write_bandwidth=1e8),),
            ),
        ),
    )
    with pytest.raises(ValueError, match="compute hosts"):
        Simulator(spec, make_swarp())


def test_simulator_requires_pfs_host():
    from repro.platform.spec import HostSpec, PlatformSpec

    spec = PlatformSpec(
        name="nopfs", hosts=(HostSpec(name="cn0", cores=4, core_speed=1e9),)
    )
    with pytest.raises(ValueError, match="pfs"):
        Simulator(spec, make_swarp())


def test_cli_end_to_end(files, tmp_path, capsys):
    platform_path, workflow_path = files
    out = tmp_path / "trace.json"
    code = main(
        [
            "--platform", str(platform_path),
            "--workflow", str(workflow_path),
            "--mode", "private",
            "--input-fraction", "0.5",
            "-o", str(out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "makespan:" in printed
    doc = json.loads(out.read_text())
    assert doc["makespan"] > 0
    assert len(doc["tasks"]) == 5


def test_cli_profile_flag(files, tmp_path, capsys):
    platform_path, workflow_path = files
    obs_dir = tmp_path / "telemetry"
    code = main(
        [
            "--platform", str(platform_path),
            "--workflow", str(workflow_path),
            "--profile",
            "--obs-dir", str(obs_dir),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "critical-path attribution" in printed
    assert "dominant:" in printed
    # The exported bundle includes a valid profile.
    from repro.obs import validate_obs_dir

    assert validate_obs_dir(obs_dir) == []
    assert (obs_dir / "profile.json").is_file()
    assert (obs_dir / "profile.folded").is_file()


def test_cli_profile_without_obs_dir(files, capsys):
    platform_path, workflow_path = files
    code = main(
        [
            "--platform", str(platform_path),
            "--workflow", str(workflow_path),
            "--profile",
        ]
    )
    assert code == 0
    assert "critical-path attribution" in capsys.readouterr().out


def test_cli_gantt(files, capsys):
    platform_path, workflow_path = files
    assert main(
        [
            "--platform", str(platform_path),
            "--workflow", str(workflow_path),
            "--gantt",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "legend: r=read" in out


def test_simulator_on_generated_fat_tree(tmp_path):
    """The facade runs on a topology-generated platform (BB-less)."""
    from repro.platform.topologies import build_fat_tree

    spec = build_fat_tree(pods=2, nodes_per_pod=2)
    trace = Simulator(spec, make_swarp(n_pipelines=2)).run()
    assert trace.makespan > 0
    hosts = {r.host for r in trace.records.values()}
    assert hosts <= {"cn0", "cn1", "cn2", "cn3"}


def test_simulator_on_generated_dragonfly():
    from repro.platform.topologies import build_dragonfly

    spec = build_dragonfly(groups=2, nodes_per_group=2)
    trace = Simulator(spec, make_swarp(n_pipelines=2)).run()
    assert trace.makespan > 0
