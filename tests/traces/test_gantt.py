"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.traces import ExecutionTrace, IOOperation, TaskRecord, render_gantt


def make_record(**kw):
    defaults = dict(
        name="t", group="g", host="cn0", cores=4,
        start=0.0, read_start=0.0, read_end=2.0,
        compute_end=8.0, write_end=10.0, end=10.0,
    )
    defaults.update(kw)
    return TaskRecord(**defaults)


def make_trace(*records):
    trace = ExecutionTrace("wf")
    for record in records:
        trace.add_record(record)
    return trace


def test_empty_trace():
    assert render_gantt(ExecutionTrace()) == "(empty trace)"


def test_zero_length_trace():
    trace = make_trace(
        make_record(end=0.0, read_end=0.0, compute_end=0.0, write_end=0.0)
    )
    assert render_gantt(trace) == "(zero-length trace)"


def test_width_minimum_enforced():
    with pytest.raises(ValueError):
        render_gantt(make_trace(make_record()), width=9)


def test_phases_render_in_order():
    out = render_gantt(make_trace(make_record()), width=20)
    row = next(line for line in out.splitlines() if line.startswith("t "))
    bar = row.split("|")[1]
    assert set(bar) <= {"r", "#", "w", " "}
    # Phases appear left to right: read, compute, write.
    assert bar.index("r") < bar.index("#") < bar.index("w")


def test_zero_duration_phase_omitted():
    # No write phase: compute_end == write_end, so no 'w' column.
    record = make_record(compute_end=10.0, write_end=10.0)
    out = render_gantt(make_trace(record), width=20)
    row = next(line for line in out.splitlines() if line.startswith("t "))
    assert "w" not in row.split("|")[1]


def test_truncation_note_after_max_tasks():
    records = [make_record(name=f"t{i:02d}", start=float(i)) for i in range(5)]
    out = render_gantt(make_trace(*records), max_tasks=3)
    assert "... (2 more tasks)" in out
    assert "t04" not in out


def test_rows_ordered_by_start_time():
    trace = make_trace(
        make_record(name="late", start=5.0),
        make_record(name="early", start=1.0),
    )
    out = render_gantt(trace)
    assert out.index("early") < out.index("late")


def test_no_io_footer_without_operations():
    out = render_gantt(make_trace(make_record()))
    assert "io:" not in out
    assert out.splitlines()[-1].startswith("legend:")


def test_io_totals_footer_formatting():
    trace = make_trace(make_record(name="a"))
    trace.log_io(
        IOOperation(
            task="a", file="f1", service="bb", kind="read",
            size=1.5e9, start=0.0, end=2.0,
        )
    )
    trace.log_io(
        IOOperation(
            task="a", file="f2", service="pfs", kind="write",
            size=0.5e9, start=2.0, end=4.0,
        )
    )
    footer = render_gantt(trace).splitlines()[-1]
    # Grand total, operation count, then per-service totals sorted by name.
    assert footer == "io: 1.9 GiB in 2 operations (bb: 1.4 GiB, pfs: 476.8 MiB)"
