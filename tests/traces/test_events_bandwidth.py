"""Tests for execution traces and bandwidth accounting."""

import json

import pytest

from repro import des
from repro.network import FlowNetwork, Link
from repro.traces import (
    ExecutionTrace,
    IOOperation,
    TaskRecord,
    TraceEvent,
    achieved_bandwidths,
    mean_achieved_bandwidth,
)


# ----------------------------------------------------------------------
# TaskRecord
# ----------------------------------------------------------------------
def make_record(**kw):
    defaults = dict(
        name="t", group="g", host="cn0", cores=4,
        start=0.0, read_start=0.0, read_end=2.0,
        compute_end=8.0, write_end=10.0, end=10.0,
    )
    defaults.update(kw)
    return TaskRecord(**defaults)


def test_record_phase_durations():
    r = make_record()
    assert r.duration == 10.0
    assert r.read_time == 2.0
    assert r.compute_time == 6.0
    assert r.write_time == 2.0
    assert r.io_time == 4.0


def test_record_io_fraction_matches_eq1():
    r = make_record()
    assert r.io_fraction == pytest.approx(0.4)


def test_record_io_fraction_zero_duration():
    r = make_record(end=0.0, read_end=0.0, compute_end=0.0, write_end=0.0)
    assert r.io_fraction == 0.0


# ----------------------------------------------------------------------
# ExecutionTrace
# ----------------------------------------------------------------------
def test_trace_makespan_is_last_event():
    trace = ExecutionTrace("wf")
    trace.log(1.0, "task_start", "a")
    trace.log(5.5, "task_end", "a")
    trace.log(3.0, "task_start", "b")
    assert trace.makespan == 5.5


def test_trace_empty_makespan_zero():
    assert ExecutionTrace().makespan == 0.0


def test_trace_makespan_falls_back_to_records():
    # A records-only trace (e.g. re-loaded from a sparse export) must
    # still report the last task completion, not 0.0.
    trace = ExecutionTrace("wf")
    trace.add_record(make_record(name="a", end=12.5))
    trace.add_record(make_record(name="b", end=7.0))
    assert trace.makespan == 12.5


def test_trace_makespan_prefers_later_of_events_and_records():
    trace = ExecutionTrace("wf")
    trace.log(20.0, "cleanup")
    trace.add_record(make_record(name="a", end=12.5))
    assert trace.makespan == 20.0


def test_trace_record_queries():
    trace = ExecutionTrace("wf")
    trace.add_record(make_record(name="a", group="resample"))
    trace.add_record(make_record(name="b", group="resample", end=20.0))
    trace.add_record(make_record(name="c", group="combine"))
    assert trace.task_record("a").name == "a"
    assert [r.name for r in trace.records_in_group("resample")] == ["a", "b"]
    assert trace.group_mean_duration("resample") == pytest.approx(15.0)
    with pytest.raises(KeyError):
        trace.task_record("ghost")
    with pytest.raises(KeyError):
        trace.group_mean_duration("ghost")


def test_trace_events_of_kind():
    trace = ExecutionTrace()
    trace.log(1.0, "x", "a")
    trace.log(2.0, "y", "b")
    trace.log(3.0, "x", "c")
    assert [e.task for e in trace.events_of_kind("x")] == ["a", "c"]


def test_trace_json_roundtrippable(tmp_path):
    trace = ExecutionTrace("wf")
    trace.log(1.0, "task_start", "a", "detail")
    trace.add_record(make_record(name="a"))
    path = tmp_path / "trace.json"
    text = trace.to_json(path)
    doc = json.loads(path.read_text())
    assert doc == json.loads(text)
    assert doc["workflow"] == "wf"
    # Record ends at 10.0 and outlives the last event (the fallback).
    assert doc["makespan"] == 10.0
    assert doc["events"][0]["kind"] == "task_start"
    assert doc["tasks"][0]["name"] == "a"
    assert doc["tasks"][0]["read_time"] == 2.0


def test_trace_from_json_roundtrips_everything(tmp_path):
    trace = ExecutionTrace("wf")
    trace.log(1.0, "task_start", "a", "detail")
    trace.log(10.0, "task_end", "a")
    trace.add_record(make_record(name="a"))
    trace.log_io(
        IOOperation(
            task="a", file="f1", service="bb", kind="read",
            size=1000.0, start=0.0, end=2.0,
        )
    )
    loaded = ExecutionTrace.from_json(trace.to_json())
    assert loaded.workflow_name == "wf"
    assert loaded.events == trace.events
    assert loaded.records == trace.records
    assert loaded.io_operations == trace.io_operations
    assert loaded.makespan == trace.makespan

    path = tmp_path / "trace.json"
    trace.to_json(path)
    from_file = ExecutionTrace.from_json_file(path)
    assert from_file.to_json() == trace.to_json()


def test_trace_from_json_accepts_parsed_document():
    trace = ExecutionTrace("wf")
    trace.add_record(make_record(name="a"))
    loaded = ExecutionTrace.from_json(json.loads(trace.to_json()))
    assert loaded.records == trace.records


def test_trace_from_json_legacy_derived_durations():
    # Pre-raw-timestamp exports carried only the derived durations;
    # phases are reconstructed as contiguous from start.
    doc = {
        "workflow": "old",
        "tasks": [
            {
                "name": "a", "group": "g", "host": "cn0", "cores": 2,
                "start": 5.0, "end": 15.0,
                "read_time": 2.0, "compute_time": 6.0, "write_time": 2.0,
            }
        ],
    }
    record = ExecutionTrace.from_json(doc).task_record("a")
    assert record.read_start == 5.0
    assert record.read_end == 7.0
    assert record.compute_end == 13.0
    assert record.write_end == 15.0
    assert record.read_time == 2.0
    assert record.compute_time == 6.0
    assert record.write_time == 2.0


def test_trace_event_to_dict():
    e = TraceEvent(1.5, "kind", "task", "detail")
    assert e.to_dict() == {
        "time": 1.5, "kind": "kind", "task": "task", "detail": "detail"
    }


def test_trace_len_counts_events():
    trace = ExecutionTrace()
    trace.log(0.0, "a")
    trace.log(1.0, "b")
    assert len(trace) == 2


# ----------------------------------------------------------------------
# Bandwidth accounting
# ----------------------------------------------------------------------
def run_flows():
    env = des.Environment()
    net = FlowNetwork(env)
    l = Link("l", bandwidth=100.0)
    net.transfer(1000, [l], label="bb:read:f1")
    net.transfer(500, [l], label="pfs:read:f2")
    env.run()
    return net


def test_achieved_bandwidths_all():
    net = run_flows()
    assert len(achieved_bandwidths(net)) == 2


def test_achieved_bandwidths_filtered_by_prefix():
    net = run_flows()
    bw = achieved_bandwidths(net, label_prefix="bb:")
    assert len(bw) == 1


def test_mean_achieved_bandwidth():
    net = run_flows()
    # Both flows share the link; each achieves well under 100 B/s.
    mean = mean_achieved_bandwidth(net)
    assert 0 < mean < 100.0


def test_mean_achieved_bandwidth_no_match_raises():
    net = run_flows()
    with pytest.raises(ValueError):
        mean_achieved_bandwidth(net, label_prefix="nothing:")


def test_zero_byte_flows_excluded():
    env = des.Environment()
    net = FlowNetwork(env)
    net.transfer(0, [], latency=1.0, label="empty")
    env.run()
    assert achieved_bandwidths(net) == []


def test_zero_duration_flows_excluded():
    # A flow over an infinitely-fast path completes instantaneously;
    # its bandwidth is undefined and must not pollute the mean.
    env = des.Environment()
    net = FlowNetwork(env)
    net.transfer(1000, [], label="instant")
    env.run()
    assert net.completed[0].achieved_bandwidth is None
    assert achieved_bandwidths(net) == []


def test_prefix_filter_composes_with_skipping():
    env = des.Environment()
    net = FlowNetwork(env)
    l = Link("l", bandwidth=100.0)
    net.transfer(1000, [l], label="bb:read:f1")
    net.transfer(0, [l], latency=1.0, label="bb:noop")
    net.transfer(500, [l], label="pfs:read:f2")
    env.run()
    assert len(achieved_bandwidths(net, label_prefix="bb:")) == 1
