"""Tests for per-file I/O operation logging."""

import json

import pytest

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.platform.units import MB
from repro.storage import BBMode, ParallelFileSystem, SharedBurstBuffer
from repro.traces import IOOperation
from repro.wms import AllBB, WorkflowEngine
from repro.workflow import File, Task, Workflow

SPEED = TABLE_I["cori"]["core_speed"]


@pytest.fixture
def trace_with_io():
    env = des.Environment()
    plat = Platform(env, cori_spec(n_compute=1, n_bb_nodes=1))
    ext = File("ext", 100 * MB)
    mid = File("mid", 200 * MB)
    a = Task("a", flops=SPEED, inputs=(ext,), outputs=(mid,), cores=1)
    b = Task("b", flops=SPEED, inputs=(mid,), cores=1)
    bb = SharedBurstBuffer(plat, ["bb0"], BBMode.PRIVATE, owner_host="cn0")
    engine = WorkflowEngine(
        plat,
        Workflow("w", [a, b]),
        ComputeService(plat, ["cn0"]),
        ParallelFileSystem(plat),
        bb_for_host=lambda h: bb,
        placement=AllBB(),
        host_assignment=lambda t: "cn0",
    )
    return engine.run()


def test_every_file_access_logged(trace_with_io):
    ops = {(op.task, op.file, op.kind) for op in trace_with_io.io_operations}
    assert ops == {
        ("a", "ext", "read"),
        ("a", "mid", "write"),
        ("b", "mid", "read"),
    }


def test_io_operation_timing(trace_with_io):
    # a reads 100 MB from the BB (prestaged): 800 MB/s uplink → 0.125 s.
    (read_op,) = [
        op for op in trace_with_io.io_operations
        if op.task == "a" and op.kind == "read"
    ]
    assert read_op.duration == pytest.approx(0.125, rel=1e-6)
    assert read_op.bandwidth == pytest.approx(800 * MB, rel=1e-6)
    assert read_op.service.startswith("bb")


def test_io_for_task_query(trace_with_io):
    assert len(trace_with_io.io_for_task("a")) == 2
    assert len(trace_with_io.io_for_task("b")) == 1
    assert trace_with_io.io_for_task("ghost") == []


def test_io_for_service_query(trace_with_io):
    bb_ops = [
        op
        for op in trace_with_io.io_operations
        if op.service.startswith("bb")
    ]
    service = bb_ops[0].service
    assert trace_with_io.io_for_service(service) == bb_ops


def test_service_bytes_accounting(trace_with_io):
    totals = trace_with_io.service_bytes()
    bb_total = sum(v for k, v in totals.items() if k.startswith("bb"))
    # ext read (100) + mid write (200) + mid read (200) = 500 MB via BB.
    assert bb_total == pytest.approx(500 * MB)


def test_io_operations_serialized(trace_with_io):
    doc = json.loads(trace_with_io.to_json())
    assert len(doc["io_operations"]) == 3
    assert {"task", "file", "service", "kind", "size", "start", "end"} <= set(
        doc["io_operations"][0]
    )


def test_zero_duration_bandwidth_is_none():
    op = IOOperation(
        task="t", file="f", service="s", kind="read", size=10.0,
        start=1.0, end=1.0,
    )
    assert op.bandwidth is None
    assert op.duration == 0.0
